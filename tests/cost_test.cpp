//===--- tests/cost_test.cpp - TIME/VAR analysis unit tests ---------------===//
//
// Hand-computable cases for Sections 4-5: single branches, loop
// frequency variance modes, interprocedural propagation (including the
// recursion extension), and the product-variance identity the paper's
// Case 1 relies on.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ptran;
using namespace ptran::testing;

namespace {

/// Builds `main` with a single IF whose taken path costs TakenCost and
/// whose fallthrough costs 0, taken with probability P (driven by a
/// mutable literal threshold over 100 runs).
struct BranchFixture {
  std::unique_ptr<Program> Prog;
  StmtId If = 0;
  IntLiteral *Threshold = nullptr;
};

TEST(TimeAnalysisUnit, SingleBranchByHand) {
  // if (cond) acc = acc + 1   (cost c1), run with p = 0.25:
  // TIME(if) = cost_if + p * c1, VAR(if) = p(1-p) c1^2.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId S = B.intVar("seed");
  VarId A = B.intVar("acc");
  B.assign(S, B.lit(int64_t(0)));
  StmtId If = B.ifGoto(B.ge(B.var(S), B.lit(0)), 10);
  StmtId Work = B.assign(A, B.add(B.var(A), B.lit(1)));
  B.label(10).cont();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();
  // Note: the T branch *skips* the work (jumps to 10); F falls through.

  auto PA = ProgramAnalysis::compute(Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  const Function *Main = Prog.entry();
  const FunctionAnalysis &FA = PA->of(*Main);
  const Ecfg &E = FA.ecfg();

  // Synthesize totals directly: 100 runs, T taken 25 times.
  FrequencyTotals Totals;
  Totals.Ok = true;
  NodeId IfNode = FA.cfg().nodeForStmt(If);
  Totals.Cond[{E.start(), CfgLabel::U}] = 100;
  Totals.Cond[{IfNode, CfgLabel::T}] = 25;
  Totals.Cond[{IfNode, CfgLabel::F}] = 75;
  for (const ControlCondition &C : FA.cd().conditions())
    if (!Totals.Cond.count(C))
      Totals.Cond[C] = C.Label == CfgLabel::Z ? 0 : 100;
  Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);

  Frequencies Freqs = computeFrequencies(FA, Totals);
  // Only (If, F) is a control condition: the T branch jumps to the
  // postdominating CONTINUE, so nothing depends on it.
  EXPECT_DOUBLE_EQ(Freqs.freqOf({IfNode, CfgLabel::F}), 0.75);

  // Costs: IF = 2, work = 8, everything else 0.
  TimeAnalysisOptions Opts;
  Opts.LocalCostOverride = [&](const Function &,
                               const Stmt *St) -> std::optional<double> {
    if (St->kind() == StmtKind::IfGoto)
      return 2.0;
    if (St->kind() == StmtKind::Assign && St == Main->stmt(Work))
      return 8.0;
    return 0.0;
  };
  std::map<const Function *, Frequencies> FreqMap{{Main, Freqs}};
  TimeAnalysis TA = TimeAnalysis::run(*PA, FreqMap, CostModel::optimizing(),
                                      Opts);

  // TIME(if) = 2 + 0.75 * 8 = 8; VAR(if) = p(1-p) * 8^2 = 12.
  EXPECT_DOUBLE_EQ(TA.of(*Main, IfNode).Time, 8.0);
  EXPECT_DOUBLE_EQ(TA.of(*Main, IfNode).Var, 0.25 * 0.75 * 64.0);
  EXPECT_DOUBLE_EQ(TA.programTime(), 8.0);
  EXPECT_DOUBLE_EQ(TA.functionVariance(*Main), 12.0);
  // E[T^2] consistency at every node.
  for (NodeId N : FA.cd().topoOrder()) {
    const NodeEstimates &EN = TA.of(*Main, N);
    EXPECT_NEAR(EN.TimeSq, EN.Var + EN.Time * EN.Time, 1e-9);
    EXPECT_NEAR(EN.StdDev, std::sqrt(EN.Var), 1e-12);
  }
}

TEST(TimeAnalysisUnit, ProductVarianceIdentity) {
  // VAR(A*B) = VAR(A)VAR(B) + E(A)^2 VAR(B) + E(B)^2 VAR(A) for
  // independent A, B — checked by simulation, since Case 1 is built on it.
  Rng R(99);
  double MeanA = 4.0, VarA = 2.25, MeanB = 7.0, VarB = 1.5;
  double Sum = 0, SumSq = 0;
  const int N = 400000;
  for (int I = 0; I < N; ++I) {
    double A = R.normal(MeanA, std::sqrt(VarA));
    double B = R.normal(MeanB, std::sqrt(VarB));
    Sum += A * B;
    SumSq += A * B * A * B;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  double Formula = VarA * VarB + MeanA * MeanA * VarB + MeanB * MeanB * VarA;
  EXPECT_NEAR(Var, Formula, 0.05 * Formula);
}

/// Program: main calls mid 3x in a loop; mid calls leaf.
TEST(TimeAnalysisUnit, InterproceduralBottomUp) {
  Program Prog;
  DiagnosticEngine Diags;
  {
    FunctionBuilder B(Prog, "leaf", Diags);
    VarId X = B.intParam("x");
    B.assign(X, B.add(B.var(X), B.lit(1)));
    ASSERT_NE(B.finish(), nullptr);
  }
  {
    FunctionBuilder B(Prog, "mid", Diags);
    VarId X = B.intParam("x");
    B.callSub("leaf", {B.var(X)});
    B.callSub("leaf", {B.var(X)});
    ASSERT_NE(B.finish(), nullptr);
  }
  {
    FunctionBuilder B(Prog, "main", Diags);
    VarId X = B.intVar("x");
    VarId I = B.intVar("i");
    B.doLoop(I, B.lit(1), B.lit(3));
    B.callSub("mid", {B.var(X)});
    B.endDo();
    ASSERT_NE(B.finish(), nullptr);
  }

  DiagnosticEngine Diags2;
  auto Est = Estimator::create(Prog, CostModel::optimizing(), EstimatorOptions(Diags2));
  ASSERT_NE(Est, nullptr) << Diags2.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  TimeAnalysisOptions Opts;
  Opts.LocalCostOverride = [](const Function &,
                              const Stmt *S) -> std::optional<double> {
    if (S->kind() == StmtKind::Assign)
      return 5.0; // leaf body
    if (S->kind() == StmtKind::Call)
      return 1.0; // call linkage
    return 0.0;
  };
  TimeAnalysis TA = Est->analyze(Opts);

  const Function *Leaf = Prog.findFunction("leaf");
  const Function *Mid = Prog.findFunction("mid");
  EXPECT_DOUBLE_EQ(TA.functionTime(*Leaf), 5.0);
  EXPECT_DOUBLE_EQ(TA.functionTime(*Mid), 2.0 * (1.0 + 5.0));
  // main: DO executes 4x (3 iterations + exit test), body = call = 13.
  EXPECT_DOUBLE_EQ(TA.programTime(), 3.0 * 13.0);
  EXPECT_FALSE(TA.hasRecursion());
}

TEST(TimeAnalysisUnit, RecursionConvergesByFixedPoint) {
  // rec(n): if (n > 0) rec(n - 1). Called with n = 4: the true cost is
  // bounded; the fixed point must converge to a finite estimate with the
  // profiled branch probability.
  Program Prog;
  DiagnosticEngine Diags;
  {
    FunctionBuilder B(Prog, "rec", Diags);
    VarId N = B.intParam("n");
    VarId M = B.intVar("m");
    B.ifGoto(B.le(B.var(N), B.lit(0)), 10);
    B.assign(M, B.sub(B.var(N), B.lit(1)));
    B.callSub("rec", {B.var(M)});
    B.label(10).cont();
    ASSERT_NE(B.finish(), nullptr);
  }
  {
    FunctionBuilder B(Prog, "main", Diags);
    VarId N = B.intVar("n");
    B.assign(N, B.lit(4));
    B.callSub("rec", {B.var(N)});
    ASSERT_NE(B.finish(), nullptr);
  }

  DiagnosticEngine Diags2;
  auto Est = Estimator::create(Prog, CostModel::optimizing(), EstimatorOptions(Diags2));
  ASSERT_NE(Est, nullptr) << Diags2.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  TimeAnalysis TA = Est->analyze();
  EXPECT_TRUE(TA.hasRecursion());
  EXPECT_GT(TA.programTime(), 0.0);
  EXPECT_TRUE(std::isfinite(TA.programTime()));
  EXPECT_TRUE(std::isfinite(TA.functionVariance(*Prog.entry())));
}

TEST(TimeAnalysisUnit, LoopVarianceModesAreOrdered) {
  // A geometric-ish goto loop: variance should rank
  // Zero <= Profiled (positive) and Geometric/Uniform > 0.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  auto VarianceWith = [&](LoopVarianceMode Mode) {
    TimeAnalysisOptions Opts = figure3CostOptions();
    Opts.LoopVariance = Mode;
    return Est->analyze(Opts).functionVariance(*Fix.Main);
  };

  double Zero = VarianceWith(LoopVarianceMode::Zero);
  double Profiled = VarianceWith(LoopVarianceMode::Profiled);
  double Geometric = VarianceWith(LoopVarianceMode::Geometric);
  double Uniform = VarianceWith(LoopVarianceMode::Uniform);

  EXPECT_DOUBLE_EQ(Zero, 90000.0); // The paper's Figure 3 number.
  // One observed loop entry: profiled per-entry variance is zero, so the
  // result collapses to the Zero mode.
  EXPECT_DOUBLE_EQ(Profiled, Zero);
  // Distribution assumptions add loop-frequency variance on top.
  EXPECT_GT(Geometric, Zero);
  EXPECT_GT(Uniform, Zero);
}

TEST(TimeAnalysisUnit, ProfiledLoopVarianceUsesMoments) {
  // A loop whose trip count varies across entries: profiled mode must
  // exceed the zero assumption.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId I = B.intVar("i"), J = B.intVar("j"), A = B.intVar("acc");
  B.doLoop(I, B.lit(1), B.lit(6));
  B.doLoop(J, B.lit(1), B.var(I)); // Trips 1..6: Var(F) > 0.
  B.assign(A, B.add(B.var(A), B.lit(1)));
  B.endDo();
  B.endDo();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  DiagnosticEngine Diags2;
  auto Est = Estimator::create(Prog, CostModel::optimizing(), EstimatorOptions(Diags2));
  ASSERT_NE(Est, nullptr) << Diags2.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  TimeAnalysisOptions ZeroOpts;
  TimeAnalysisOptions ProfOpts;
  ProfOpts.LoopVariance = LoopVarianceMode::Profiled;
  double VZero = Est->analyze(ZeroOpts).functionVariance(*Prog.entry());
  double VProf = Est->analyze(ProfOpts).functionVariance(*Prog.entry());
  EXPECT_GT(VProf, VZero);

  // And the moments themselves are right: inner loop header executions
  // per entry are 2..7, mean 4.5.
  const Function *Main = Prog.entry();
  const LoopFrequencyStats::Moments *M =
      Est->loopStats().momentsFor(*Main, /*HeaderStmt=*/1);
  ASSERT_NE(M, nullptr);
  EXPECT_DOUBLE_EQ(M->Entries, 6.0);
  EXPECT_DOUBLE_EQ(M->mean(), 4.5);
  EXPECT_NEAR(M->variance(), (49.0 - 1.0) / 12.0 - 0.0, 3.0); // ~2.9.
}

TEST(FrequenciesUnit, ZeroDenominatorGuard) {
  // A function never executed: all frequencies 0, no division faults.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Fix.Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  const FunctionAnalysis &FA = PA->of(*Fix.Main);

  FrequencyTotals Totals;
  Totals.Ok = true;
  for (const ControlCondition &C : FA.cd().conditions())
    Totals.Cond[C] = 0.0;
  Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);
  Frequencies Freqs = computeFrequencies(FA, Totals);
  EXPECT_DOUBLE_EQ(Freqs.Invocations, 0.0);
  for (const auto &[C, V] : Freqs.Freq)
    EXPECT_DOUBLE_EQ(V, 0.0);
}

TEST(FrequenciesUnit, MultiRunAccumulationKeepsRatios) {
  // Running the same program twice doubles totals but preserves FREQ.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  FrequencyTotals Once = Est->totalsFor(*Fix.Main);
  Frequencies FOnce = computeFrequencies(Est->analysis().of(*Fix.Main), Once);
  ASSERT_TRUE(Est->profiledRun().Ok);
  FrequencyTotals Twice = Est->totalsFor(*Fix.Main);
  Frequencies FTwice =
      computeFrequencies(Est->analysis().of(*Fix.Main), Twice);

  EXPECT_DOUBLE_EQ(FTwice.Invocations, 2.0 * FOnce.Invocations);
  for (const auto &[C, V] : FOnce.Freq)
    EXPECT_NEAR(FTwice.freqOf(C), V, 1e-12);
  // Figure 3's estimate is invariant under accumulation.
  TimeAnalysis TA = Est->analyze(figure3CostOptions());
  EXPECT_DOUBLE_EQ(TA.programTime(), 920.0);
}

} // namespace
