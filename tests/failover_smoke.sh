#!/usr/bin/env bash
#===--- tests/failover_smoke.sh - Warm-standby failover e2e test ---------===//
#
# Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
#
# The replication acceptance run: pair a primary ptran-serve with a
# --standby-of follower, prove the standby serves byte-identical read-only
# estimates while refusing writes, kill -9 the primary and promote the
# standby (SIGUSR1) into a writable daemon whose answers match the
# pre-kill reference byte-for-byte, then sweep every replication crash
# point (repl.ship / repl.snapshot / repl.ack on the primary,
# repl.journal / repl.apply / repl.bootstrap / repl.promote on the
# standby) and demand the pair converges again after each. Promotion and
# boot are held to wall-clock SLOs (override with PTRAN_PROMOTE_SLO_MS /
# PTRAN_RECOVERY_SLO_MS). Usage:
#
#   failover_smoke.sh <ptran-serve> <ptran-bench-client> <work-dir>
#
#===----------------------------------------------------------------------===//

set -u

SERVE=$1
CLIENT=$2
WORK=$3

PROMOTE_SLO_MS=${PTRAN_PROMOTE_SLO_MS:-30000}
RECOVERY_SLO_MS=${PTRAN_RECOVERY_SLO_MS:-60000}

rm -rf "$WORK"
mkdir -p "$WORK"
PSTATE="$WORK/primary"
SSTATE="$WORK/standby"
PSOCK="$WORK/p.sock"
SSOCK="$WORK/s.sock"
# Unix socket paths are capped at ~107 bytes; build trees can be deep.
if [ ${#PSOCK} -ge 100 ]; then
  PSOCK=$(mktemp -u /tmp/ptran-failover-XXXXXX.sock)
  SSOCK="$PSOCK.s"
fi

PROBES="--probe=bench-0 --probe=bench-0:work --probe=bench-1 --probe=bench-1:tail"
RC=0
PRIMARY_PID=
STANDBY_PID=

fail() {
  echo "failover_smoke: $*" >&2
  RC=1
}

now_ms() { date +%s%3N; }

# start_primary <log> [extra args...] — PTRAN_FAULT rides along if the
# caller exported it. Enforces the boot-recovery SLO.
start_primary() {
  local LOG=$1
  shift
  local T0
  T0=$(now_ms)
  "$SERVE" --socket="$PSOCK" --state-dir="$PSTATE" --fsync=always \
    --snapshot-interval-ms=0 "$@" >"$LOG" 2>&1 &
  PRIMARY_PID=$!
  for _ in $(seq 1 200); do
    grep -q "listening on" "$LOG" 2>/dev/null && break
    kill -0 "$PRIMARY_PID" 2>/dev/null || return 1
    sleep 0.1
  done
  grep -q "listening on" "$LOG" 2>/dev/null || return 1
  local MS=$(( $(now_ms) - T0 ))
  if [ "$MS" -gt "$RECOVERY_SLO_MS" ]; then
    fail "primary boot recovery took ${MS}ms (SLO ${RECOVERY_SLO_MS}ms)"
  fi
  return 0
}

# start_standby <log> [extra args...]
start_standby() {
  local LOG=$1
  shift
  local T0
  T0=$(now_ms)
  "$SERVE" --socket="$SSOCK" --state-dir="$SSTATE" --fsync=always \
    --snapshot-interval-ms=0 --standby-of="$PSOCK" "$@" >"$LOG" 2>&1 &
  STANDBY_PID=$!
  for _ in $(seq 1 200); do
    grep -q "listening on" "$LOG" 2>/dev/null && break
    kill -0 "$STANDBY_PID" 2>/dev/null || return 1
    sleep 0.1
  done
  grep -q "listening on" "$LOG" 2>/dev/null || return 1
  local MS=$(( $(now_ms) - T0 ))
  if [ "$MS" -gt "$RECOVERY_SLO_MS" ]; then
    fail "standby boot took ${MS}ms (SLO ${RECOVERY_SLO_MS}ms)"
  fi
  return 0
}

# wait_exit <pid> <expected-rc> <what>
wait_exit() {
  local PID=$1 WANT=$2 WHAT=$3 GOT
  wait "$PID"
  GOT=$?
  if [ "$GOT" -ne "$WANT" ]; then
    fail "$WHAT exited with rc=$GOT, wanted $WANT"
  fi
}

# wait_catchup <reference-file> <tag> — polls the standby's probes until
# they byte-match the reference (replication lag bounded by the timeout).
wait_catchup() {
  local REF=$1 TAG=$2
  for _ in $(seq 1 200); do
    if "$CLIENT" --socket="$SSOCK" $PROBES >"$WORK/$TAG.standby.out" 2>&1 \
        && diff -q "$REF" "$WORK/$TAG.standby.out" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  diff -u "$REF" "$WORK/$TAG.standby.out" >&2
  fail "$TAG: standby never converged on the primary's answers"
  return 1
}

# promote_standby <log> <tag> — SIGUSR1, wait for the promotion log line,
# enforce the promotion SLO.
promote_standby() {
  local LOG=$1 TAG=$2
  local T0
  T0=$(now_ms)
  kill -USR1 "$STANDBY_PID"
  for _ in $(seq 1 200); do
    grep -q "promoted to primary" "$LOG" 2>/dev/null && break
    kill -0 "$STANDBY_PID" 2>/dev/null || { fail "$TAG: standby died during promotion"; return 1; }
    sleep 0.1
  done
  grep -q "promoted to primary" "$LOG" 2>/dev/null \
    || { fail "$TAG: promotion never logged"; return 1; }
  local MS=$(( $(now_ms) - T0 ))
  if [ "$MS" -gt "$PROMOTE_SLO_MS" ]; then
    fail "$TAG: promotion took ${MS}ms (SLO ${PROMOTE_SLO_MS}ms)"
  fi
  return 0
}

stop_all() {
  [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null
  [ -n "$STANDBY_PID" ] && kill -9 "$STANDBY_PID" 2>/dev/null
  [ -n "$PRIMARY_PID" ] && wait "$PRIMARY_PID" 2>/dev/null
  [ -n "$STANDBY_PID" ] && wait "$STANDBY_PID" 2>/dev/null
  PRIMARY_PID=
  STANDBY_PID=
}

#--- 1. Catch-up: populate the primary FIRST, then attach a standby. -----===//

start_primary "$WORK/p1.log" --repl-ack=batch || {
  echo "failover_smoke: primary never came up" >&2
  cat "$WORK/p1.log" >&2
  exit 1
}
"$CLIENT" --socket="$PSOCK" --setup-only --sessions=2 \
  >"$WORK/setup.log" 2>&1 || fail "session setup failed"
"$CLIENT" --socket="$PSOCK" --connections=4 --requests=8 --sessions=2 \
  --ingest-every=4 --stream-every=3 >"$WORK/traffic1.log" 2>&1 \
  || fail "pre-standby traffic failed"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref1.out" 2>&1 \
  || fail "reference probes failed"

start_standby "$WORK/s1.log" || {
  fail "standby never came up"
  cat "$WORK/s1.log" >&2
  exit 1
}
grep -q "standby" "$WORK/s1.log" || fail "standby role not logged"
wait_catchup "$WORK/ref1.out" catchup

#--- 2. The standby refuses writes with a structured error. --------------===//

"$CLIENT" --socket="$SSOCK" --setup-only --sessions=1 \
  >"$WORK/reject.log" 2>&1 && fail "standby accepted a write"
grep -q "standby replica" "$WORK/reject.log" \
  || fail "write rejection lacks the structured standby message"

#--- 3. Live tail: more primary traffic while the subscription is up, ----===//
#--- plus concurrent stream writers; the standby tracks it all. ----------===//

"$CLIENT" --socket="$PSOCK" --connections=4 --requests=8 --sessions=2 \
  --ingest-every=3 --stream-every=2 --stream-writers=2 \
  >"$WORK/traffic2.log" 2>&1 || fail "live-tail traffic failed"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref2.out" 2>&1 \
  || fail "live-tail reference probes failed"
wait_catchup "$WORK/ref2.out" livetail
stop_all

#--- 4. ack=always: a kill -9'd primary loses NOTHING it acknowledged. ---===//

start_primary "$WORK/p2.log" --repl-ack=always || fail "ack=always primary failed"
start_standby "$WORK/s2.log" --repl-ack=always || fail "ack=always standby failed"
# Quiesced strict check: every mutation below was acked under ack=always,
# so every one of them must survive the primary's death.
"$CLIENT" --socket="$PSOCK" --connections=4 --requests=6 --sessions=2 \
  --ingest-every=3 >"$WORK/traffic3.log" 2>&1 || fail "acked traffic failed"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref3.out" 2>&1 \
  || fail "acked reference probes failed"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null
PRIMARY_PID=

promote_standby "$WORK/s2.log" failover
"$CLIENT" --socket="$SSOCK" $PROBES >"$WORK/promoted.out" 2>&1 \
  || fail "promoted-standby probes failed"
diff -u "$WORK/ref3.out" "$WORK/promoted.out" >&2 \
  || fail "an acknowledged mutation was lost across failover"

# The promoted daemon is a real primary: it accepts writes.
"$CLIENT" --socket="$SSOCK" --connections=2 --requests=4 --sessions=2 \
  --ingest-every=2 >"$WORK/postpromote.log" 2>&1 \
  || fail "promoted standby refused writes"
"$CLIENT" --socket="$SSOCK" $PROBES >"$WORK/promoted2.out" 2>&1 \
  || fail "post-promotion probes failed"

# Replay determinism: a fresh daemon on a byte copy of the promoted
# standby's state answers identically — the journal it accumulated purely
# from shipped frames (plus its own post-promotion writes) is a valid
# durable history in its own right.
kill -TERM "$STANDBY_PID"
wait_exit "$STANDBY_PID" 0 "promoted standby (graceful shutdown)"
STANDBY_PID=
rm -rf "$SSTATE.copy"
cp -a "$SSTATE" "$SSTATE.copy"
"$SERVE" --socket="$SSOCK" --state-dir="$SSTATE.copy" --fsync=always \
  --snapshot-interval-ms=0 >"$WORK/replay.log" 2>&1 &
REPLAY_PID=$!
for _ in $(seq 1 200); do
  grep -q "listening on" "$WORK/replay.log" 2>/dev/null && break
  kill -0 "$REPLAY_PID" 2>/dev/null || break
  sleep 0.1
done
"$CLIENT" --socket="$SSOCK" $PROBES >"$WORK/replay.out" 2>&1 \
  || fail "replay probes failed"
diff -u "$WORK/promoted2.out" "$WORK/replay.out" >&2 \
  || fail "replaying the promoted standby's state diverged"
kill -9 "$REPLAY_PID" 2>/dev/null
wait "$REPLAY_PID" 2>/dev/null
rm -rf "$SSTATE.copy"

#--- 5. Primary-side crash points: the daemon dies at the injected -------===//
#--- point; a restarted primary re-serves the standby to convergence. ----===//

# Fresh pair for the crash sweeps.
rm -rf "$PSTATE" "$SSTATE"
start_primary "$WORK/p3.log" --repl-ack=batch || fail "crash-sweep primary failed"
"$CLIENT" --socket="$PSOCK" --setup-only --sessions=2 >/dev/null 2>&1 \
  || fail "crash-sweep setup failed"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref4.out" 2>&1 \
  || fail "crash-sweep reference probes failed"
kill -TERM "$PRIMARY_PID"
wait_exit "$PRIMARY_PID" 0 "crash-sweep primary (graceful shutdown)"
PRIMARY_PID=

for POINT in repl.ship repl.snapshot repl.ack; do
  # The graceful shutdown above (and each sweep's own shutdown) rotated
  # the journal, so a fresh standby forces the bootstrap path — which is
  # what repl.snapshot needs, and harmless for the others.
  rm -rf "$SSTATE"
  export PTRAN_FAULT="crash.at=$POINT"
  start_primary "$WORK/$POINT.p.log" --repl-ack=batch \
    || fail "$POINT: primary failed to boot"
  unset PTRAN_FAULT
  start_standby "$WORK/$POINT.s.log" --repl-ack=batch \
    || fail "$POINT: standby failed to boot"
  # Traffic pushes frames (and acks) through the subscription until the
  # primary dies at the injected point; the client may see the hangup.
  "$CLIENT" --socket="$PSOCK" --connections=2 --requests=6 --sessions=2 \
    --ingest-every=3 >/dev/null 2>&1
  wait_exit "$PRIMARY_PID" 42 "primary (crash at $POINT)"
  PRIMARY_PID=

  # Restart the primary cleanly; the standby reconnects with backoff and
  # converges on whatever survived the crash.
  start_primary "$WORK/$POINT.p2.log" --repl-ack=batch \
    || fail "$POINT: primary restart failed"
  "$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/$POINT.ref.out" 2>&1 \
    || fail "$POINT: post-restart probes failed"
  wait_catchup "$WORK/$POINT.ref.out" "$POINT"
  kill -9 "$STANDBY_PID" 2>/dev/null
  wait "$STANDBY_PID" 2>/dev/null
  STANDBY_PID=
  kill -TERM "$PRIMARY_PID"
  wait_exit "$PRIMARY_PID" 0 "primary ($POINT graceful shutdown)"
  PRIMARY_PID=
done

#--- 6. Standby-side crash points: the standby dies at the injected ------===//
#--- point; a restarted standby recovers its journal and converges. ------===//

start_primary "$WORK/p4.log" --repl-ack=batch || fail "standby-sweep primary failed"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref5.out" 2>&1 \
  || fail "standby-sweep reference probes failed"

for POINT in repl.bootstrap repl.journal repl.apply; do
  # repl.bootstrap runs first, on a fresh state dir against the rotated
  # primary journal: the standby dies mid-bootstrap, leaving the pending
  # marker; its restart must detect the marker and re-bootstrap from
  # scratch. The later points then exercise the streaming apply path.
  [ "$POINT" = repl.bootstrap ] && rm -rf "$SSTATE"
  export PTRAN_FAULT="crash.at=$POINT"
  start_standby "$WORK/$POINT.s.log" --repl-ack=batch
  unset PTRAN_FAULT
  if [ "$POINT" != repl.bootstrap ]; then
    # Streaming points need fresh frames to ship.
    "$CLIENT" --socket="$PSOCK" --connections=2 --requests=4 --sessions=2 \
      --ingest-every=2 >/dev/null 2>&1 || fail "$POINT: traffic failed"
  fi
  wait_exit "$STANDBY_PID" 42 "standby (crash at $POINT)"
  STANDBY_PID=

  if [ "$POINT" = repl.bootstrap ]; then
    [ -f "$SSTATE/repl-bootstrap.pending" ] \
      || fail "$POINT: no pending marker after a mid-bootstrap crash"
  fi
  start_standby "$WORK/$POINT.s2.log" --repl-ack=batch \
    || fail "$POINT: standby restart failed"
  if [ "$POINT" = repl.bootstrap ]; then
    grep -q "incomplete bootstrap detected" "$WORK/$POINT.s2.log" \
      || fail "$POINT: torn bootstrap not detected on restart"
  fi
  "$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/$POINT.ref.out" 2>&1 \
    || fail "$POINT: reference probes failed"
  wait_catchup "$WORK/$POINT.ref.out" "$POINT"
  kill -9 "$STANDBY_PID" 2>/dev/null
  wait "$STANDBY_PID" 2>/dev/null
  STANDBY_PID=
done

#--- 7. Crash during promotion: the synced journal survives; a restart ---===//
#--- WITHOUT --standby-of is a plain primary on the replicated state. ----===//

start_standby "$WORK/promote-crash.s.log" --repl-ack=batch \
  || fail "promote-crash standby failed to boot"
"$CLIENT" --socket="$PSOCK" $PROBES >"$WORK/ref6.out" 2>&1 \
  || fail "promote-crash reference probes failed"
wait_catchup "$WORK/ref6.out" promote-crash-pre
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null
PRIMARY_PID=

# Arm the crash point inside the running standby via a restart: the fault
# config is read at process start.
kill -9 "$STANDBY_PID" 2>/dev/null
wait "$STANDBY_PID" 2>/dev/null
export PTRAN_FAULT="crash.at=repl.promote"
"$SERVE" --socket="$SSOCK" --state-dir="$SSTATE" --fsync=always \
  --snapshot-interval-ms=0 --standby-of="$PSOCK" \
  >"$WORK/promote-crash.s2.log" 2>&1 &
STANDBY_PID=$!
unset PTRAN_FAULT
for _ in $(seq 1 200); do
  grep -q "listening on" "$WORK/promote-crash.s2.log" 2>/dev/null && break
  kill -0 "$STANDBY_PID" 2>/dev/null || break
  sleep 0.1
done
kill -USR1 "$STANDBY_PID"
wait_exit "$STANDBY_PID" 42 "standby (crash at repl.promote)"
STANDBY_PID=

# The replicated journal was synced before the crash: a plain (non-
# standby) daemon on that state dir serves the reference answers.
"$SERVE" --socket="$SSOCK" --state-dir="$SSTATE" --fsync=always \
  --snapshot-interval-ms=0 >"$WORK/promote-crash.final.log" 2>&1 &
STANDBY_PID=$!
for _ in $(seq 1 200); do
  grep -q "listening on" "$WORK/promote-crash.final.log" 2>/dev/null && break
  kill -0 "$STANDBY_PID" 2>/dev/null || break
  sleep 0.1
done
"$CLIENT" --socket="$SSOCK" $PROBES >"$WORK/promote-crash.out" 2>&1 \
  || fail "post-promote-crash probes failed"
diff -u "$WORK/ref6.out" "$WORK/promote-crash.out" >&2 \
  || fail "a promotion crash lost replicated state"
"$CLIENT" --socket="$SSOCK" --probe=bench-0 --shutdown >/dev/null 2>&1 \
  || fail "final shutdown failed"
wait_exit "$STANDBY_PID" 0 "final daemon (graceful shutdown)"
STANDBY_PID=

stop_all
if [ "$RC" -ne 0 ]; then
  echo "=== daemon logs ===" >&2
  tail -n 20 "$WORK"/*.log >&2
fi
exit $RC
