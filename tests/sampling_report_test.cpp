//===--- tests/sampling_report_test.cpp - Sampling profiler & flat report -===//
//
// Section 3's comparison of profiler styles, quantified: the simulated
// sampling profiler recovers relative *procedure* times well but is
// useless for statement-level frequencies — the reason the paper builds
// a counter-based profiler. Plus the gprof-style flat report derived
// from the estimates.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "cost/Report.h"
#include "interp/Interpreter.h"
#include "profile/SamplingProfile.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(SamplingProfile, ClockMatchesInterpreter) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  CostModel CM = CostModel::optimizing();
  SamplingProfile Sampler(CM, 1000.0);
  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Sampler);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  // The sampler accumulates the identical per-statement costs.
  EXPECT_NEAR(Sampler.cycles(), R.Cycles, 1e-6 * R.Cycles);
  EXPECT_NEAR(static_cast<double>(Sampler.totalSamples()),
              R.Cycles / 1000.0, 1.5);
}

TEST(SamplingProfile, ProcedureFractionsTrackEstimatedSelfTime) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  CostModel CM = CostModel::optimizing();
  auto Est = Estimator::create(*Prog, CM, EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();

  SamplingProfile Sampler(CM, 500.0);
  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Est->runtimeMutable());
  Interp.addObserver(&Sampler);
  ASSERT_TRUE(Interp.run().Ok);

  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog->functions())
    Freqs[F.get()] =
        computeFrequencies(Est->analysis().of(*F), Est->totalsFor(*F));
  TimeAnalysis TA = TimeAnalysis::run(Est->analysis(), Freqs, CM);
  std::vector<ProcedureReportRow> Rows =
      buildProcedureReport(Est->analysis(), Freqs, TA);

  // For every procedure: sampled fraction within a few points of the
  // estimated self fraction ("an approximate but realistic measure of
  // the relative execution time spent in each procedure").
  for (const ProcedureReportRow &Row : Rows) {
    const Function *F = Prog->findFunction(Row.Name);
    ASSERT_NE(F, nullptr);
    EXPECT_NEAR(Sampler.fractionIn(*F), Row.SelfFraction, 0.03)
        << Row.Name;
  }
}

TEST(SamplingProfile, TooCoarseForStatementFrequencies) {
  // The paper's argument against sampling: with a realistic period, most
  // executed statements receive no samples at all, so per-statement
  // frequencies cannot be recovered.
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  CostModel CM = CostModel::optimizing();

  SamplingProfile Sampler(CM, 2000.0);
  ExactProfile Exact(*PA);
  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Sampler);
  Interp.addObserver(&Exact);
  ASSERT_TRUE(Interp.run().Ok);

  unsigned Executed = 0, Unsampled = 0;
  for (const auto &F : Prog->functions())
    for (StmtId S = 0; S < F->numStmts(); ++S) {
      if (Exact.stmtCount(*F, S) == 0.0)
        continue;
      ++Executed;
      Unsampled += Sampler.samplesAt(*F, S) == 0;
    }
  ASSERT_GT(Executed, 100u);
  EXPECT_GT(static_cast<double>(Unsampled) / Executed, 0.5)
      << "sampling unexpectedly covered most statements";
}

TEST(SamplingProfile, ResetClearsState) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  CostModel CM = CostModel::optimizing();
  SamplingProfile Sampler(CM, 1000.0);
  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Sampler);
  ASSERT_TRUE(Interp.run().Ok);
  ASSERT_GT(Sampler.totalSamples(), 0u);
  Sampler.reset();
  EXPECT_EQ(Sampler.totalSamples(), 0u);
  EXPECT_DOUBLE_EQ(Sampler.cycles(), 0.0);
}

TEST(ProcedureReport, Figure1FlatProfile) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Fix.Prog->functions())
    Freqs[F.get()] =
        computeFrequencies(Est->analysis().of(*F), Est->totalsFor(*F));
  TimeAnalysis TA = TimeAnalysis::run(Est->analysis(), Freqs,
                                      CostModel::optimizing(),
                                      figure3CostOptions());
  std::vector<ProcedureReportRow> Rows =
      buildProcedureReport(Est->analysis(), Freqs, TA);
  ASSERT_EQ(Rows.size(), 2u);

  // foo: 9 calls of 100 each, all self time — it dominates the profile.
  EXPECT_EQ(Rows[0].Name, "foo");
  EXPECT_DOUBLE_EQ(Rows[0].Calls, 9.0);
  EXPECT_DOUBLE_EQ(Rows[0].TimePerCall, 100.0);
  EXPECT_DOUBLE_EQ(Rows[0].SelfPerCall, 100.0);
  EXPECT_DOUBLE_EQ(Rows[0].TotalSelf, 900.0);

  // main: one call, TIME 920, self = the 20 cycles of IF tests.
  EXPECT_EQ(Rows[1].Name, "main");
  EXPECT_DOUBLE_EQ(Rows[1].Calls, 1.0);
  EXPECT_DOUBLE_EQ(Rows[1].TimePerCall, 920.0);
  EXPECT_DOUBLE_EQ(Rows[1].SelfPerCall, 20.0);
  EXPECT_DOUBLE_EQ(Rows[1].TotalSelf, 20.0);
  EXPECT_DOUBLE_EQ(Rows[1].StdDevPerCall, 300.0);

  // Fractions sum to one; self times sum to the program total.
  EXPECT_NEAR(Rows[0].SelfFraction + Rows[1].SelfFraction, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Rows[0].TotalSelf + Rows[1].TotalSelf, 920.0);

  // The renderer produces a table containing both procedures.
  std::string Text = formatProcedureReport(Rows);
  EXPECT_NE(Text.find("foo"), std::string::npos);
  EXPECT_NE(Text.find("920"), std::string::npos);
}

TEST(ProcedureReport, SelfTimesSumToProgramTimeOnWorkloads) {
  for (const Workload *W : table1Workloads()) {
    std::unique_ptr<Program> Prog = parseWorkload(*W);
    DiagnosticEngine Diags;
    auto Est = Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(Diags));
    ASSERT_NE(Est, nullptr) << Diags.str();
    ASSERT_TRUE(Est->profiledRun(W->MaxSteps).Ok);

    std::map<const Function *, Frequencies> Freqs;
    for (const auto &F : Prog->functions())
      Freqs[F.get()] =
          computeFrequencies(Est->analysis().of(*F), Est->totalsFor(*F));
    TimeAnalysis TA = TimeAnalysis::run(Est->analysis(), Freqs,
                                        CostModel::optimizing());
    std::vector<ProcedureReportRow> Rows =
        buildProcedureReport(Est->analysis(), Freqs, TA);

    double SumSelf = 0.0;
    for (const ProcedureReportRow &Row : Rows)
      SumSelf += Row.TotalSelf;
    // Total self time across procedures equals the program's TIME(START)
    // (every cycle is some procedure's local work).
    EXPECT_NEAR(SumSelf, TA.programTime(), 1e-6 * TA.programTime())
        << W->Name;
  }
}

} // namespace
