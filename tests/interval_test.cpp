//===--- tests/interval_test.cpp - Interval structure tests ---------------===//
//
// The paper's HDR / HDR_PARENT / HDR_LCA mappings, loop bodies, entry /
// back / exit edges, exit-free-DO detection, irreducibility rejection and
// node splitting.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "interval/Intervals.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ptran;
using namespace ptran::testing;

namespace {

/// main with a triple-nested DO and a sibling DO:
///   do i ...          (outer)
///     do j ...        (middle)
///       do k ...      (inner)
///   do m ...          (sibling)
struct NestedLoops {
  std::unique_ptr<Program> Prog;
  StmtId Outer, Middle, Inner, Sibling;
};

NestedLoops makeNested() {
  NestedLoops Out;
  Out.Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  FunctionBuilder B(*Out.Prog, "main", Diags);
  VarId A = B.intVar("acc");
  VarId I = B.intVar("i"), J = B.intVar("j"), K = B.intVar("k"),
        M = B.intVar("m");
  Out.Outer = B.doLoop(I, B.lit(1), B.lit(3));
  Out.Middle = B.doLoop(J, B.lit(1), B.lit(3));
  Out.Inner = B.doLoop(K, B.lit(1), B.lit(3));
  B.assign(A, B.add(B.var(A), B.lit(1)));
  B.endDo();
  B.endDo();
  B.endDo();
  Out.Sibling = B.doLoop(M, B.lit(1), B.lit(3));
  B.assign(A, B.add(B.var(A), B.lit(2)));
  B.endDo();
  EXPECT_NE(B.finish(), nullptr) << Diags.str();
  return Out;
}

TEST(Intervals, NestedDoLoops) {
  NestedLoops Fix = makeNested();
  const Function *F = Fix.Prog->findFunction("main");
  Cfg C = buildCfg(*F);
  DiagnosticEngine Diags;
  auto IS = IntervalStructure::compute(C, Diags);
  ASSERT_TRUE(IS.has_value()) << Diags.str();

  NodeId Outer = C.nodeForStmt(Fix.Outer);
  NodeId Middle = C.nodeForStmt(Fix.Middle);
  NodeId Inner = C.nodeForStmt(Fix.Inner);
  NodeId Sibling = C.nodeForStmt(Fix.Sibling);

  ASSERT_EQ(IS->headers().size(), 4u);
  EXPECT_TRUE(IS->isHeader(Outer));
  EXPECT_TRUE(IS->isHeader(Sibling));

  // HDR: a header is in its own interval.
  EXPECT_EQ(IS->hdr(Outer), Outer);
  EXPECT_EQ(IS->hdr(Inner), Inner);
  // The assignment inside the innermost loop maps to the inner header.
  EXPECT_EQ(IS->hdr(C.nodeForStmt(Fix.Inner + 1)), Inner);

  // HDR_PARENT chains and the virtual outermost interval.
  EXPECT_EQ(IS->hdrParent(Inner), Middle);
  EXPECT_EQ(IS->hdrParent(Middle), Outer);
  EXPECT_EQ(IS->hdrParent(Outer), InvalidNode);
  EXPECT_EQ(IS->hdrParent(Sibling), InvalidNode);

  // HDR_LCA.
  EXPECT_EQ(IS->hdrLca(Inner, Middle), Middle);
  EXPECT_EQ(IS->hdrLca(Inner, Inner), Inner);
  EXPECT_EQ(IS->hdrLca(Inner, Sibling), InvalidNode);
  EXPECT_EQ(IS->hdrLca(InvalidNode, Inner), InvalidNode);

  // Depths and containment.
  EXPECT_EQ(IS->loopDepth(Inner), 3u);
  EXPECT_EQ(IS->loopDepth(Sibling), 1u);
  EXPECT_TRUE(IS->contains(Outer, Inner));
  EXPECT_FALSE(IS->contains(Inner, Outer));
  EXPECT_FALSE(IS->contains(Outer, Sibling));

  // Bodies are nested by size.
  EXPECT_GT(IS->loopBody(Outer).size(), IS->loopBody(Middle).size());
  EXPECT_GT(IS->loopBody(Middle).size(), IS->loopBody(Inner).size());

  // Headers are reported outermost-first.
  const std::vector<NodeId> &Hs = IS->headers();
  auto PosOf = [&](NodeId H) {
    return std::find(Hs.begin(), Hs.end(), H) - Hs.begin();
  };
  EXPECT_LT(PosOf(Outer), PosOf(Middle));
  EXPECT_LT(PosOf(Middle), PosOf(Inner));

  // Every loop here is an exit-free DO loop.
  for (NodeId H : Hs)
    EXPECT_TRUE(IS->isExitFreeDoLoop(C, H));

  // Entry and back edges: one each for the inner loop.
  EXPECT_EQ(IS->entryEdges(Inner).size(), 1u);
  EXPECT_EQ(IS->backEdges(Inner).size(), 1u);
  // The only exit edge of the inner loop is its own F branch.
  ASSERT_EQ(IS->exitEdges(Inner).size(), 1u);
  EXPECT_EQ(C.graph().edge(IS->exitEdges(Inner)[0]).From, Inner);
}

TEST(Intervals, LoopWithConditionalExitIsNotExitFree) {
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId A = B.intVar("acc");
  VarId I = B.intVar("i");
  StmtId Loop = B.doLoop(I, B.lit(1), B.lit(10));
  B.ifGoto(B.gt(B.var(A), B.lit(3)), 99); // Premature exit.
  B.assign(A, B.add(B.var(A), B.lit(1)));
  B.endDo();
  B.label(99).cont();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  Cfg C = buildCfg(*Prog.findFunction("main"));
  auto IS = IntervalStructure::compute(C, Diags);
  ASSERT_TRUE(IS.has_value());
  EXPECT_FALSE(IS->isExitFreeDoLoop(C, C.nodeForStmt(Loop)));
  // Two exit edges: the conditional exit and the DO's F branch.
  EXPECT_EQ(IS->exitEdges(C.nodeForStmt(Loop)).size(), 2u);
}

TEST(Intervals, ReturnInsideLoopIsAnExitBranch) {
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId A = B.intVar("acc");
  VarId I = B.intVar("i");
  StmtId Loop = B.doLoop(I, B.lit(1), B.lit(10));
  B.ifGoto(B.gt(B.var(A), B.lit(3)), 50);
  B.gotoLabel(60);
  StmtId Ret = B.label(50).ret();
  B.label(60).cont();
  B.endDo();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  Cfg C = buildCfg(*Prog.findFunction("main"));
  auto IS = IntervalStructure::compute(C, Diags);
  ASSERT_TRUE(IS.has_value());
  NodeId H = C.nodeForStmt(Loop);
  // The RETURN node cannot reach the latch, so it sits *outside* the
  // natural loop body; the loop's premature exit is the IF's T edge
  // leading to it. The DO's F branch falls off the end of the function
  // and is the loop's only procedure-exit branch.
  EXPECT_FALSE(IS->contains(H, C.nodeForStmt(Ret)));
  bool SawExitToReturn = false;
  for (EdgeId E : IS->exitEdges(H))
    SawExitToReturn |= C.graph().edge(E).To == C.nodeForStmt(Ret);
  EXPECT_TRUE(SawExitToReturn);
  ASSERT_EQ(IS->exitBranches(H).size(), 1u);
  EXPECT_EQ(IS->exitBranches(H)[0].Node, H);
  EXPECT_EQ(IS->exitBranches(H)[0].Label, CfgLabel::F);
  EXPECT_FALSE(IS->isExitFreeDoLoop(C, H));
}

TEST(Intervals, GotoLoopIsRecognized) {
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId W = B.intVar("w");
  B.assign(W, B.lit(0));
  StmtId Head = B.label(10).assign(W, B.add(B.var(W), B.lit(1)));
  B.ifGoto(B.le(B.var(W), B.lit(5)), 10);
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  Cfg C = buildCfg(*Prog.findFunction("main"));
  auto IS = IntervalStructure::compute(C, Diags);
  ASSERT_TRUE(IS.has_value());
  ASSERT_EQ(IS->headers().size(), 1u);
  EXPECT_EQ(IS->headers()[0], C.nodeForStmt(Head));
  EXPECT_FALSE(IS->isExitFreeDoLoop(C, IS->headers()[0]));
}

TEST(Intervals, RejectsIrreducibleGraphs) {
  // Synthetic irreducible CFG: 0 -> 1, 0 -> 2, 1 <-> 2.
  Cfg C;
  for (int I = 0; I < 3; ++I)
    C.createNode(CfgNodeType::Other);
  C.setEntry(0);
  C.addEdge(0, 1, CfgLabel::T);
  C.addEdge(0, 2, CfgLabel::F);
  C.addEdge(1, 2, CfgLabel::U);
  C.addEdge(2, 1, CfgLabel::U);
  C.addExitBranch(1, CfgLabel::U);

  DiagnosticEngine Diags;
  EXPECT_FALSE(IntervalStructure::compute(C, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("irreducible"), std::string::npos);
}

TEST(NodeSplitting, MakesIrreducibleGraphsReducible) {
  Cfg C;
  for (int I = 0; I < 3; ++I)
    C.createNode(CfgNodeType::Other);
  C.setEntry(0);
  C.addEdge(0, 1, CfgLabel::T);
  C.addEdge(0, 2, CfgLabel::F);
  C.addEdge(1, 2, CfgLabel::U);
  C.addEdge(2, 1, CfgLabel::U);

  DiagnosticEngine Diags;
  unsigned Copies = splitNodes(C, Diags);
  EXPECT_GT(Copies, 0u);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(isReducible(CsrGraph(C.graph()).view(), C.entry()));
  // And the interval structure now computes.
  EXPECT_TRUE(IntervalStructure::compute(C, Diags).has_value())
      << Diags.str();
}

TEST(NodeSplitting, NoOpOnReducibleGraphs) {
  Cfg C;
  for (int I = 0; I < 3; ++I)
    C.createNode(CfgNodeType::Other);
  C.setEntry(0);
  C.addEdge(0, 1, CfgLabel::U);
  C.addEdge(1, 2, CfgLabel::U);
  C.addEdge(2, 1, CfgLabel::U);
  DiagnosticEngine Diags;
  EXPECT_EQ(splitNodes(C, Diags), 0u);
}

TEST(NodeSplitting, RefusesFunctionBackedCfgs) {
  Figure1Program Fix = makeFigure1();
  Cfg C = buildCfg(*Fix.Main);
  DiagnosticEngine Diags;
  splitNodes(C, Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

class RandomProgramIntervals : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramIntervals, StructuralInvariantsHold) {
  std::unique_ptr<Program> Prog =
      makeRandomProgram(GetParam(), RandomProgramConfig());
  DiagnosticEngine Diags;
  for (const auto &F : Prog->functions()) {
    Cfg C = buildCfg(*F);
    elideGotoNodes(C);
    auto IS = IntervalStructure::compute(C, Diags);
    ASSERT_TRUE(IS.has_value()) << Diags.str();
    for (NodeId H : IS->headers()) {
      // Headers belong to their own body; bodies are within parents.
      EXPECT_TRUE(IS->contains(H, H));
      NodeId P = IS->hdrParent(H);
      if (P != InvalidNode)
        for (NodeId N : IS->loopBody(H)) {
          EXPECT_TRUE(IS->contains(P, N));
        }
      // Back edges come from inside, entry edges from outside.
      for (EdgeId E : IS->backEdges(H))
        EXPECT_TRUE(IS->contains(H, C.graph().edge(E).From));
      for (EdgeId E : IS->entryEdges(H))
        EXPECT_FALSE(IS->contains(H, C.graph().edge(E).From));
      for (EdgeId E : IS->exitEdges(H)) {
        EXPECT_TRUE(IS->contains(H, C.graph().edge(E).From));
        EXPECT_FALSE(IS->contains(H, C.graph().edge(E).To));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramIntervals,
                         ::testing::Range<uint64_t>(200, 220));

} // namespace
