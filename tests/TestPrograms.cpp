//===--- tests/TestPrograms.cpp - Shared test fixtures --------------------===//

#include "TestPrograms.h"

#include "support/Casting.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"

#include <string>

using namespace ptran;
using namespace ptran::testing;

Figure1Program ptran::testing::makeFigure1() {
  Figure1Program Fix;
  Fix.Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;

  {
    FunctionBuilder B(*Fix.Prog, "main", Diags);
    VarId M = B.intVar("m");
    VarId N = B.intVar("n");
    B.assign(M, B.lit(1));
    B.assign(N, B.lit(8));
    Fix.A = B.label(10).ifGoto(B.ge(B.var(M), B.lit(0)), 30);
    Fix.C = B.ifGoto(B.ge(B.var(N), B.lit(0)), 20);
    B.gotoLabel(40);
    Fix.B = B.label(30).ifGoto(B.lt(B.var(N), B.lit(0)), 20);
    Fix.D = B.label(40).callSub("foo", {B.var(M), B.var(N)});
    B.gotoLabel(10);
    Fix.E = B.label(20).cont();
    if (!B.finish())
      reportFatalError("figure 1 main failed to build:\n" + Diags.str());
  }
  {
    FunctionBuilder B(*Fix.Prog, "foo", Diags);
    VarId M = B.intParam("m");
    VarId N = B.intParam("n");
    (void)M;
    B.assign(N, B.sub(B.var(N), B.lit(1)));
    if (!B.finish())
      reportFatalError("figure 1 foo failed to build:\n" + Diags.str());
  }

  Fix.Main = Fix.Prog->findFunction("main");
  Fix.Foo = Fix.Prog->findFunction("foo");
  return Fix;
}

TimeAnalysisOptions ptran::testing::figure3CostOptions() {
  TimeAnalysisOptions Opts;
  Opts.LocalCostOverride =
      [](const Function &F, const Stmt *S) -> std::optional<double> {
    if (equalsLower(F.name(), "foo"))
      return S->kind() == StmtKind::Assign ? 100.0 : 0.0;
    if (S->kind() == StmtKind::IfGoto)
      return 1.0;
    return 0.0;
  };
  return Opts;
}

namespace {

/// Emits statements that advance the in-program pseudo-random state and
/// leave a fresh value in `rnd` (0 .. 9999).
class ProgramRng {
public:
  ProgramRng(FunctionBuilder &B, VarId Seed, VarId Rnd)
      : B(B), Seed(Seed), Rnd(Rnd) {}

  /// seed = mod(seed * 1103 + 7919, 100003); rnd = mod(seed, 10000)
  void advance() {
    B.assign(Seed, B.intrinsic(Intrinsic::Mod,
                               {B.add(B.mul(B.var(Seed), B.lit(1103)),
                                      B.lit(7919)),
                                B.lit(100003)}));
    B.assign(Rnd, B.intrinsic(Intrinsic::Mod, {B.var(Seed), B.lit(10000)}));
  }

  /// A condition that is true with roughly probability \p Percent / 100.
  Expr *chance(int Percent) {
    return B.lt(B.var(Rnd), B.lit(Percent * 100));
  }

private:
  FunctionBuilder &B;
  VarId Seed;
  VarId Rnd;
};

/// Recursive generator of one procedure body.
class BodyGenerator {
public:
  BodyGenerator(FunctionBuilder &B, Rng &Gen, const RandomProgramConfig &Cfg,
                VarId Seed, VarId Rnd, VarId Acc, VarId Work,
                unsigned NumCallees)
      : B(B), Gen(Gen), Cfg(Cfg), PRng(B, Seed, Rnd), Rnd(Rnd), Acc(Acc),
        Work(Work), NumCallees(NumCallees) {}

  void genRegion(unsigned Depth) {
    unsigned Regions =
        static_cast<unsigned>(Gen.uniformInt(1, Cfg.MaxRegionsPerLevel));
    for (unsigned I = 0; I < Regions; ++I)
      genOne(Depth);
  }

  int freshLabel() { return NextLabel++; }

private:
  void genStraightLine() {
    B.assign(Acc, B.add(B.var(Acc), B.lit(Gen.uniformInt(1, 9))));
  }

  void genIf(unsigned Depth) {
    int Else = freshLabel();
    int End = freshLabel();
    bool HasElse = Gen.bernoulli(0.5);
    PRng.advance();
    // IF (chance) fails -> skip the then-part.
    B.ifGoto(B.logicalNot(PRng.chance(static_cast<int>(
                 Gen.uniformInt(20, 80)))),
             Else);
    genRegion(Depth + 1);
    if (HasElse) {
      B.gotoLabel(End);
      B.label(Else).cont();
      genRegion(Depth + 1);
      B.label(End).cont();
    } else {
      B.label(Else).cont();
    }
  }

  void genDoLoop(unsigned Depth) {
    std::string Name = "i" + std::to_string(NextVar++);
    VarId I = B.intVar(Name);
    bool ConstTrip = Gen.bernoulli(0.5);
    Expr *Hi = ConstTrip
                   ? B.lit(Gen.uniformInt(0, 5))
                   : B.add(B.intrinsic(Intrinsic::Mod,
                                       {B.var(Rnd), B.lit(4)}),
                           B.lit(1));
    if (!ConstTrip)
      PRng.advance();
    // Note: when the trip is random, advance() must come first so Hi reads
    // a fresh value; re-emit in the right order.
    B.doLoop(I, B.lit(1), Hi);
    bool Exit = Cfg.WithLoopExits && Gen.bernoulli(0.4);
    int After = freshLabel();
    if (Exit) {
      PRng.advance();
      B.ifGoto(PRng.chance(15), After);
    }
    genRegion(Depth + 1);
    B.endDo();
    if (Exit)
      B.label(After).cont();
  }

  void genGotoLoop(unsigned Depth) {
    std::string Name = "w" + std::to_string(NextVar++);
    VarId W = B.intVar(Name);
    int Head = freshLabel();
    int Out = freshLabel();
    int64_t Bound = Gen.uniformInt(1, 6);
    B.assign(W, B.lit(0));
    B.label(Head).cont();
    B.assign(W, B.add(B.var(W), B.lit(1)));
    B.ifGoto(B.gt(B.var(W), B.lit(Bound)), Out);
    if (Cfg.WithLoopExits && Gen.bernoulli(0.3)) {
      PRng.advance();
      B.ifGoto(PRng.chance(20), Out);
    }
    genRegion(Depth + 1);
    B.gotoLabel(Head);
    B.label(Out).cont();
  }

  void genCall() {
    unsigned Callee = static_cast<unsigned>(
        Gen.uniformInt(0, static_cast<int64_t>(NumCallees) - 1));
    B.callSub("helper" + std::to_string(Callee),
              {B.var("seed"), B.var("rnd"), B.var("acc")});
  }

  void genComputedGoto(unsigned Depth) {
    // GOTO (L1..Ln), idx where idx = mod(rnd, n+1): value 0 exercises the
    // out-of-range fallthrough arm.
    unsigned Arms = static_cast<unsigned>(Gen.uniformInt(2, 4));
    std::vector<int> Labels;
    for (unsigned K = 0; K < Arms; ++K)
      Labels.push_back(freshLabel());
    int End = freshLabel();
    PRng.advance();
    Expr *Index = B.intrinsic(
        Intrinsic::Mod, {B.var(Rnd), B.lit(static_cast<int64_t>(Arms) + 1)});
    B.computedGoto(Index, Labels);
    // Fallthrough arm.
    genStraightLine();
    B.gotoLabel(End);
    for (unsigned K = 0; K < Arms; ++K) {
      B.label(Labels[K]).cont();
      genRegion(Depth + 1);
      if (K + 1 < Arms)
        B.gotoLabel(End);
    }
    B.label(End).cont();
  }

  void genOne(unsigned Depth) {
    double Roll = Gen.uniformReal();
    if (Depth >= Cfg.MaxDepth || Roll < 0.3) {
      genStraightLine();
      return;
    }
    if (Roll < 0.5) {
      genIf(Depth);
      return;
    }
    if (Roll < 0.65) {
      genDoLoop(Depth);
      return;
    }
    if (Roll < 0.75) {
      genComputedGoto(Depth);
      return;
    }
    if (Cfg.WithGotoLoops && Roll < 0.9) {
      genGotoLoop(Depth);
      return;
    }
    if (Cfg.WithCalls && NumCallees > 0) {
      genCall();
      return;
    }
    genStraightLine();
  }

  FunctionBuilder &B;
  Rng &Gen;
  const RandomProgramConfig &Cfg;
  ProgramRng PRng;
  VarId Rnd;
  VarId Acc;
  VarId Work;
  unsigned NumCallees;
  int NextLabel = 100;
  unsigned NextVar = 0;
};

void buildProcedureBody(FunctionBuilder &B, Rng &Gen,
                        const RandomProgramConfig &Cfg, VarId Seed, VarId Rnd,
                        VarId Acc, unsigned NumCallees, unsigned Depth) {
  VarId Work = B.intVar("workaux");
  BodyGenerator Body(B, Gen, Cfg, Seed, Rnd, Acc, Work, NumCallees);
  Body.genRegion(Depth);
}

} // namespace

std::unique_ptr<Program>
ptran::testing::makeRandomProgram(uint64_t Seed,
                                  const RandomProgramConfig &Cfg) {
  Rng Gen(Seed);
  auto Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;

  unsigned NumCallees =
      Cfg.WithCalls ? static_cast<unsigned>(Gen.uniformInt(0, 2)) : 0;

  for (unsigned C = 0; C < NumCallees; ++C) {
    FunctionBuilder B(*Prog, "helper" + std::to_string(C), Diags);
    VarId S = B.intParam("seed");
    VarId R = B.intParam("rnd");
    VarId A = B.intParam("acc");
    RandomProgramConfig Leaf = Cfg;
    Leaf.WithCalls = false;
    buildProcedureBody(B, Gen, Leaf, S, R, A, 0, 1);
    if (!B.finish())
      reportFatalError("random helper failed to build:\n" + Diags.str());
  }

  {
    FunctionBuilder B(*Prog, "main", Diags);
    VarId S = B.intVar("seed");
    VarId R = B.intVar("rnd");
    VarId A = B.intVar("acc");
    B.assign(S, B.lit(static_cast<int64_t>(Seed % 99991) + 1));
    B.assign(R, B.lit(0));
    B.assign(A, B.lit(0));
    buildProcedureBody(B, Gen, Cfg, S, R, A, NumCallees, 0);
    B.print({B.var(A)});
    if (!B.finish())
      reportFatalError("random main failed to build:\n" + Diags.str());
  }
  return Prog;
}
