//===--- tests/cdg_test.cpp - Control dependence tests --------------------===//
//
// Validates the Ferrante-Ottenstein-Warren computation against a literal
// brute-force implementation of Definition 2 (on the forward ECFG), and
// checks the FCDG's structural guarantees: acyclic, rooted at START,
// interval nesting under preheaders.
//
//===----------------------------------------------------------------------===//

#include "Reference.h"
#include "TestPrograms.h"

#include "core/Analysis.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace ptran;
using namespace ptran::testing;

namespace {

/// Collects the FCDG edge set of \p FA as (From, To, Label) triples.
std::set<std::tuple<NodeId, NodeId, LabelId>>
fcdgEdges(const FunctionAnalysis &FA) {
  std::set<std::tuple<NodeId, NodeId, LabelId>> Out;
  const Digraph &F = FA.cd().fcdg();
  for (EdgeId E = 0; E < F.numEdgeSlots(); ++E) {
    if (!F.isLive(E))
      continue;
    const Digraph::Edge &Ed = F.edge(E);
    Out.insert({Ed.From, Ed.To, Ed.Label});
  }
  return Out;
}

void expectMatchesDefinition2(const FunctionAnalysis &FA,
                              const std::string &Context) {
  std::set<std::tuple<NodeId, NodeId, LabelId>> Got = fcdgEdges(FA);
  std::set<std::tuple<NodeId, NodeId, LabelId>> Truth =
      bruteForceControlDependence(FA.cd().forwardGraph(),
                                  FA.ecfg().stop());

  for (const auto &[X, Y, L] : Truth)
    EXPECT_TRUE(Got.count({X, Y, L}))
        << Context << ": missing CD (" << FA.ecfg().cfg().nodeName(X) << ", "
        << FA.ecfg().cfg().nodeName(Y) << ", "
        << cfgLabelName(static_cast<CfgLabel>(L)) << ")";
  for (const auto &[X, Y, L] : Got)
    EXPECT_TRUE(Truth.count({X, Y, L}))
        << Context << ": spurious CD (" << FA.ecfg().cfg().nodeName(X)
        << ", " << FA.ecfg().cfg().nodeName(Y) << ", "
        << cfgLabelName(static_cast<CfgLabel>(L)) << ")";
}

TEST(ControlDependenceTest, MatchesDefinition2OnFigure1) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto FA = FunctionAnalysis::compute(*Fix.Main, Diags);
  ASSERT_NE(FA, nullptr) << Diags.str();
  expectMatchesDefinition2(*FA, "figure1");
}

class RandomProgramCd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramCd, MatchesDefinition2) {
  std::unique_ptr<Program> Prog =
      makeRandomProgram(GetParam(), RandomProgramConfig());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  for (const auto &F : Prog->functions())
    expectMatchesDefinition2(PA->of(*F), F->name());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramCd,
                         ::testing::Range<uint64_t>(400, 425));

TEST(ControlDependenceTest, FcdgIsRootedAndAcyclicOnWorkloads) {
  for (const Workload *W : table1Workloads()) {
    std::unique_ptr<Program> Prog = parseWorkload(*W);
    DiagnosticEngine Diags;
    auto PA = ProgramAnalysis::compute(*Prog, Diags);
    ASSERT_NE(PA, nullptr) << Diags.str();
    for (const auto &F : Prog->functions()) {
      const FunctionAnalysis &FA = PA->of(*F);
      // Acyclic by construction (would have aborted otherwise); rooted:
      // the topological order covers everything with FCDG in-edges.
      std::set<NodeId> InTopo(FA.cd().topoOrder().begin(),
                              FA.cd().topoOrder().end());
      const Digraph &Fcdg = FA.cd().fcdg();
      for (NodeId N = 0; N < Fcdg.numNodes(); ++N)
        if (Fcdg.inDegree(N) > 0) {
          EXPECT_TRUE(InTopo.count(N))
              << W->Name << "/" << F->name() << " node "
              << FA.ecfg().cfg().nodeName(N) << " not reachable from START";
        }
      // START comes first.
      ASSERT_FALSE(FA.cd().topoOrder().empty());
      EXPECT_EQ(FA.cd().topoOrder().front(), FA.ecfg().start());
    }
  }
}

TEST(ControlDependenceTest, IntervalsNestUnderPreheaders) {
  // Every node of a loop body must be directly or indirectly control
  // dependent on the loop's preheader (the property the pseudo edges were
  // introduced for).
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto FA = FunctionAnalysis::compute(*Fix.Main, Diags);
  ASSERT_NE(FA, nullptr) << Diags.str();

  ASSERT_EQ(FA->intervals().headers().size(), 1u);
  NodeId H = FA->intervals().headers()[0];
  NodeId Ph = FA->ecfg().preheaderOf(H);

  // BFS in the FCDG from the preheader.
  const Digraph &Fcdg = FA->cd().fcdg();
  std::vector<bool> Reach(Fcdg.numNodes(), false);
  std::vector<NodeId> Worklist = {Ph};
  Reach[Ph] = true;
  while (!Worklist.empty()) {
    NodeId N = Worklist.back();
    Worklist.pop_back();
    for (NodeId S : Fcdg.successors(N))
      if (!Reach[S]) {
        Reach[S] = true;
        Worklist.push_back(S);
      }
  }
  for (NodeId N : FA->intervals().loopBody(H))
    EXPECT_TRUE(Reach[N]) << FA->ecfg().cfg().nodeName(N);
}

TEST(ControlDependenceTest, ConditionsOnlyAtBranchPoints) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  for (const auto &F : Prog->functions()) {
    const FunctionAnalysis &FA = PA->of(*F);
    for (const ControlCondition &C : FA.cd().conditions()) {
      const Cfg &E = FA.ecfg().cfg();
      CfgNodeType Ty = E.nodeType(C.Node);
      bool IsBranchStmt = false;
      if (E.origin(C.Node) != InvalidStmt) {
        StmtKind K = F->stmt(E.origin(C.Node))->kind();
        IsBranchStmt = K == StmtKind::IfGoto || K == StmtKind::DoStart;
      }
      EXPECT_TRUE(Ty == CfgNodeType::Start || Ty == CfgNodeType::Preheader ||
                  Ty == CfgNodeType::Iterate || IsBranchStmt)
          << F->name() << ": condition at " << E.nodeName(C.Node);
    }
  }
}

} // namespace
