//===--- tests/csr_test.cpp - CSR kernels and the GraphView API -----------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
// Covers the flat graph layer introduced with the GraphView redesign:
//
//   - CsrGraph reproduces a Digraph's adjacency (both directions) in
//     insertion order with stable EdgeIds, and GraphView::reversed() is an
//     exact role swap;
//   - the deprecated Digraph overloads of DFS/dominators/SCC still compile
//     (warnings suppressed here, as estimator_test does for the Estimator
//     shim) and agree with the GraphView primaries;
//   - the CSR TIME/VAR kernel is bit-identical (memcmp of every node
//     estimate) to the node-object reference kernel across the Figure 1/3
//     program, random reducible programs, the many-function workload, a
//     program with an irreducible function, and the quarantine-degrade
//     path, at one and many jobs.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "graph/DepthFirst.h"
#include "graph/Dominators.h"
#include "graph/Scc.h"
#include "parser/Parser.h"
#include "session/EstimationSession.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace ptran;
using namespace ptran::testing;

namespace {

//===----------------------------------------------------------------------===//
// CSR structure: adjacency, order, EdgeIds, reversal
//===----------------------------------------------------------------------===//

Digraph randomDigraph(Rng &R, unsigned N, double P) {
  Digraph G(N);
  for (NodeId U = 0; U < N; ++U)
    for (NodeId V = 0; V < N; ++V)
      if (R.bernoulli(P))
        G.addEdge(U, V, static_cast<LabelId>(R.uniformInt(0, 2)));
  return G;
}

/// Succ/pred runs of \p View must list exactly \p G's live edges in
/// insertion order, with the original labels and EdgeIds.
void expectMirrorsDigraph(const Digraph &G, const GraphView &View) {
  ASSERT_EQ(View.numNodes(), G.numNodes());
  ASSERT_EQ(View.numEdgeSlots(), G.numEdgeSlots());
  ASSERT_EQ(View.numEdges(), G.numEdges());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    std::vector<EdgeId> Out = G.outEdges(N);
    GraphView::Range Succs = View.succs(N);
    ASSERT_EQ(Succs.size(), Out.size()) << "node " << N;
    for (size_t I = 0; I < Out.size(); ++I) {
      const Digraph::Edge &E = G.edge(Out[I]);
      EXPECT_EQ(Succs[I].Edge, Out[I]);
      EXPECT_EQ(Succs[I].Node, E.To);
      EXPECT_EQ(Succs[I].Label, E.Label);
    }
    std::vector<EdgeId> In = G.inEdges(N);
    GraphView::Range Preds = View.preds(N);
    ASSERT_EQ(Preds.size(), In.size()) << "node " << N;
    for (size_t I = 0; I < In.size(); ++I) {
      const Digraph::Edge &E = G.edge(In[I]);
      EXPECT_EQ(Preds[I].Edge, In[I]);
      EXPECT_EQ(Preds[I].Node, E.From); // preds carry the source node
      EXPECT_EQ(Preds[I].Label, E.Label);
    }
    EXPECT_EQ(View.outDegree(N), G.outDegree(N));
    EXPECT_EQ(View.inDegree(N), G.inDegree(N));
  }
}

TEST(CsrGraph, MirrorsDigraphAdjacencyOrderAndEdgeIds) {
  Rng R(7);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Digraph G = randomDigraph(R, 1 + Trial % 12, 0.3);
    CsrGraph Csr(G);
    expectMirrorsDigraph(G, Csr.view());
  }
}

TEST(CsrGraph, ErasedEdgesAreDroppedButKeepTheirSlots) {
  Digraph G(3);
  EdgeId AB = G.addEdge(0, 1, 0);
  EdgeId AC = G.addEdge(0, 2, 1);
  EdgeId BC = G.addEdge(1, 2, 0);
  G.eraseEdge(AC);
  CsrGraph Csr(G);
  const GraphView View = Csr.view();
  // The erased edge vanishes from adjacency but its id slot survives, so
  // EdgeId-indexed side tables stay correctly sized.
  EXPECT_EQ(View.numEdges(), 2u);
  EXPECT_EQ(View.numEdgeSlots(), 3u);
  ASSERT_EQ(View.succs(0).size(), 1u);
  EXPECT_EQ(View.succs(0)[0].Edge, AB);
  ASSERT_EQ(View.preds(2).size(), 1u);
  EXPECT_EQ(View.preds(2)[0].Edge, BC);
  expectMirrorsDigraph(G, View);
}

TEST(GraphView, ReversedSwapsRolesAndPreservesEdgeIds) {
  Rng R(11);
  Digraph G = randomDigraph(R, 9, 0.3);
  CsrGraph Csr(G);
  const GraphView Fwd = Csr.view();
  const GraphView Rev = Fwd.reversed();
  ASSERT_EQ(Rev.numNodes(), Fwd.numNodes());
  ASSERT_EQ(Rev.numEdges(), Fwd.numEdges());
  for (NodeId N = 0; N < Fwd.numNodes(); ++N) {
    GraphView::Range A = Fwd.succs(N);
    GraphView::Range B = Rev.preds(N);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].Edge, B[I].Edge);
      EXPECT_EQ(A[I].Node, B[I].Node);
    }
    // Double reversal is the identity.
    GraphView::Range C = Rev.reversed().succs(N);
    ASSERT_EQ(C.size(), A.size());
    for (size_t I = 0; I < A.size(); ++I)
      EXPECT_EQ(C[I].Edge, A[I].Edge);
  }
}

TEST(GraphView, EmptyAndIsolatedGraphs) {
  Digraph Empty;
  CsrGraph CsrEmpty(Empty);
  EXPECT_EQ(CsrEmpty.view().numNodes(), 0u);
  EXPECT_EQ(CsrEmpty.view().numEdges(), 0u);

  Digraph Isolated(4); // nodes, no edges
  CsrGraph CsrIso(Isolated);
  for (NodeId N = 0; N < 4; ++N) {
    EXPECT_TRUE(CsrIso.view().succs(N).empty());
    EXPECT_TRUE(CsrIso.view().preds(N).empty());
  }
}

//===----------------------------------------------------------------------===//
// Deprecated Digraph shims: still compile, same answers
//===----------------------------------------------------------------------===//

TEST(DeprecatedShims, DigraphOverloadsAgreeWithGraphView) {
  Rng R(23);
  for (int Trial = 0; Trial < 12; ++Trial) {
    Digraph G = randomDigraph(R, 2 + Trial, 0.25);
    // Guarantee an exit-reaching spine so postdominators have a root.
    for (NodeId N = 0; N + 1 < G.numNodes(); ++N)
      G.addEdge(N, N + 1, 0);
    CsrGraph Csr(G);
    const GraphView View = Csr.view();
    const NodeId Entry = 0;
    const NodeId Exit = G.numNodes() - 1;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    DfsResult OldDfs(G, Entry);
    std::vector<NodeId> OldRpo = reversePostorder(G, Entry);
    std::optional<std::vector<NodeId>> OldTopo = topologicalOrder(G);
    DominatorTree OldDom(G, Entry);
    DominatorTree OldPdt(G, Exit, DominatorTree::Direction::Post);
    SccResult OldSccs = computeSccs(G);
    bool OldRed = isReducible(G, Entry);
#pragma GCC diagnostic pop

    DfsResult NewDfs(View, Entry);
    EXPECT_EQ(NewDfs.reversePostorder(), OldDfs.reversePostorder());
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      EXPECT_EQ(NewDfs.preorder(N), OldDfs.preorder(N));
      EXPECT_EQ(NewDfs.postorder(N), OldDfs.postorder(N));
      EXPECT_EQ(NewDfs.parent(N), OldDfs.parent(N));
    }
    for (EdgeId E = 0; E < G.numEdgeSlots(); ++E)
      EXPECT_EQ(NewDfs.edgeKind(E), OldDfs.edgeKind(E));

    EXPECT_EQ(reversePostorder(View, Entry), OldRpo);
    EXPECT_EQ(topologicalOrder(View), OldTopo);

    DominatorTree NewDom(View, Entry);
    DominatorTree NewPdt(View, Exit, DominatorTree::Direction::Post);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      EXPECT_EQ(NewDom.idom(N), OldDom.idom(N)) << "node " << N;
      EXPECT_EQ(NewPdt.idom(N), OldPdt.idom(N)) << "node " << N;
    }

    SccResult NewSccs = computeSccs(View);
    EXPECT_EQ(NewSccs.Component, OldSccs.Component);
    EXPECT_EQ(NewSccs.Members, OldSccs.Members);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      bool OldCyc = OldSccs.isInCycle(G, N);
#pragma GCC diagnostic pop
      EXPECT_EQ(NewSccs.isInCycle(View, N), OldCyc);
    }

    EXPECT_EQ(isReducible(View, Entry), OldRed);
  }
}

//===----------------------------------------------------------------------===//
// Kernel bit-identity: Csr vs NodeObjects
//===----------------------------------------------------------------------===//

// Synthetic but structurally valid frequencies, identical for every run
// (same construction as parallel_test's). Functions whose analysis failed
// (irreducible) are skipped, as TimeAnalysis itself skips them.
std::map<const Function *, Frequencies>
syntheticFrequencies(const Program &Prog, const ProgramAnalysis &PA) {
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog.functions()) {
    const FunctionAnalysis *FA = PA.tryOf(*F);
    if (!FA)
      continue;
    FrequencyTotals Totals;
    Totals.Ok = true;
    for (const ControlCondition &C : FA->cd().conditions()) {
      double V = 1.0;
      if (C.Label == CfgLabel::Z)
        V = 0.0;
      else if (FA->ecfg().headerOf(C.Node) != InvalidNode)
        V = 3.0;
      Totals.Cond[C] = V;
    }
    Totals.Cond[{FA->ecfg().start(), CfgLabel::U}] = 1.0;
    Totals.Node = nodeTotalsFromConds(*FA, Totals.Cond);
    Freqs[F.get()] = computeFrequencies(*FA, Totals);
  }
  return Freqs;
}

/// Every analyzable function's node estimates must be byte-identical
/// between the two analyses.
void expectKernelsBitIdentical(const Program &Prog, const ProgramAnalysis &PA,
                               const TimeAnalysis &Csr,
                               const TimeAnalysis &Ref) {
  for (const auto &F : Prog.functions()) {
    if (!PA.tryOf(*F))
      continue;
    const std::vector<NodeEstimates> &EA = Csr.estimatesOf(*F);
    const std::vector<NodeEstimates> &EB = Ref.estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size()) << F->name();
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << "kernels disagree bitwise on " << F->name();
  }
}

/// Runs both kernels on \p Prog with synthetic frequencies at \p Jobs and
/// asserts bit-identity.
void compareKernels(const Program &Prog, unsigned Jobs,
                    TimeAnalysisOptions Base) {
  DiagnosticEngine Diags;
  AnalysisOptions AOpts;
  AOpts.Exec.Jobs = Jobs;
  auto PA = ProgramAnalysis::compute(Prog, Diags, AOpts);
  ASSERT_NE(PA, nullptr) << Diags.str();
  std::map<const Function *, Frequencies> Freqs =
      syntheticFrequencies(Prog, *PA);

  Base.Exec.Jobs = Jobs;
  Base.Kernel = TimeKernel::Csr;
  TimeAnalysis Csr =
      TimeAnalysis::run(*PA, Freqs, CostModel::optimizing(), Base);
  Base.Kernel = TimeKernel::NodeObjects;
  TimeAnalysis Ref =
      TimeAnalysis::run(*PA, Freqs, CostModel::optimizing(), Base);

  expectKernelsBitIdentical(Prog, *PA, Csr, Ref);
  EXPECT_EQ(Csr.programTime(), Ref.programTime());
  EXPECT_EQ(Csr.programStdDev(), Ref.programStdDev());
}

TEST(KernelBitIdentity, Figure1AtOneAndManyJobs) {
  Figure1Program Fix = makeFigure1();
  for (unsigned Jobs : {1u, 4u})
    compareKernels(*Fix.Prog, Jobs, figure3CostOptions());
}

TEST(KernelBitIdentity, Figure3ExactValuesThroughTheCsrKernel) {
  // The full profiled pipeline (default kernel = Csr) must still land on
  // the paper's Figure 3 numbers exactly, and a NodeObjects re-analysis of
  // the same estimator state must agree to the bit.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(),
                               EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  TimeAnalysisOptions CsrOpts = figure3CostOptions();
  CsrOpts.Kernel = TimeKernel::Csr;
  TimeAnalysis Csr = Est->analyze(CsrOpts);
  TimeAnalysisOptions RefOpts = figure3CostOptions();
  RefOpts.Kernel = TimeKernel::NodeObjects;
  TimeAnalysis Ref = Est->analyze(RefOpts);

  EXPECT_EQ(Csr.programTime(), Ref.programTime());
  EXPECT_EQ(Csr.programStdDev(), Ref.programStdDev());
  for (const auto &F : Fix.Prog->functions()) {
    const std::vector<NodeEstimates> &EA = Csr.estimatesOf(*F);
    const std::vector<NodeEstimates> &EB = Ref.estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size());
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << F->name();
  }
}

class KernelBitIdentityRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelBitIdentityRandom, RandomProgramsAtOneAndManyJobs) {
  std::unique_ptr<Program> Prog =
      makeRandomProgram(GetParam(), RandomProgramConfig());
  ASSERT_NE(Prog, nullptr);
  for (unsigned Jobs : {1u, 4u})
    compareKernels(*Prog, Jobs, TimeAnalysisOptions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelBitIdentityRandom,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(KernelBitIdentity, ManyFunctionWorkloadAcrossJobs) {
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(31, 2);
  for (unsigned Jobs : {1u, 8u})
    compareKernels(*Prog, Jobs, TimeAnalysisOptions());
}

TEST(KernelBitIdentity, SurvivesAnIrreducibleFunction) {
  // bad() is the textbook irreducible GOTO weave; the partial analysis
  // skips it and both kernels must agree on the survivors.
  const char *Src = R"(
program main
  integer a
  a = 0
  call good(a)
end

subroutine good(a)
  integer a
  a = a + 1
end

subroutine bad(a)
  integer a
  if (a .gt. 0) goto 20
10 a = a + 1
  goto 30
20 a = a + 2
30 if (a .lt. 5) goto 20
  if (a .lt. 9) goto 10
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseProgram(Src, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();
  for (unsigned Jobs : {1u, 4u})
    compareKernels(*Prog, Jobs, TimeAnalysisOptions());
}

TEST(KernelBitIdentity, LoopVarianceModelsAgree) {
  // The Case 1 VAR(FREQ) models go through loopFreqVariance in both
  // kernels; cover the closed-form ones on the Figure 1 loop.
  Figure1Program Fix = makeFigure1();
  for (LoopVarianceMode Mode :
       {LoopVarianceMode::Geometric, LoopVarianceMode::Uniform}) {
    TimeAnalysisOptions Opts = figure3CostOptions();
    Opts.LoopVariance = Mode;
    compareKernels(*Fix.Prog, 1, Opts);
  }
}

TEST(KernelBitIdentity, QuarantineDegradePathsAgree) {
  // Two sessions differing only in kernel choice ingest the same corrupt
  // profile under BadProfilePolicy::Quarantine: the degraded (static-
  // frequency) estimates must also be bit-identical between kernels.
  const char *Src = R"FTN(
program main
  x = 0.0
  call mid(x)
  print x
end
subroutine mid(x)
  call leaf(x)
end
subroutine leaf(x)
  do 10 i = 1, 4
    x = x + 1.0
10 continue
end
)FTN";
  DiagnosticEngine ParseDiags;
  std::unique_ptr<Program> Prog = parseProgram(Src, ParseDiags);
  ASSERT_NE(Prog, nullptr) << ParseDiags.str();

  // Produce a profile, then corrupt the mid section.
  DiagnosticEngine ProdDiags;
  auto Producer = EstimationSession::create(
      *Prog, CostModel::optimizing(),
      EstimatorOptions(ProdDiags).onBadProfile(BadProfilePolicy::Quarantine));
  ASSERT_NE(Producer, nullptr) << ProdDiags.str();
  ASSERT_TRUE(Producer->profiledRun().Ok);
  ProfileFile Corrupt = Producer->captureProfile();
  bool Poisoned = false;
  for (FunctionSection &S : Corrupt.sectionsMutable()) {
    if (S.Name == "mid") {
      S.Valid = false;
      S.Issue = "section checksum mismatch (corrupt data)";
      S.Counters.clear();
      S.Loops.clear();
      Poisoned = true;
    }
  }
  ASSERT_TRUE(Poisoned);

  auto IngestAndEstimate = [&](TimeKernel K, DiagnosticEngine &Diags) {
    auto S = EstimationSession::create(
        *Prog, CostModel::optimizing(),
        EstimatorOptions(Diags)
            .kernel(K)
            .onBadProfile(BadProfilePolicy::Quarantine));
    EXPECT_NE(S, nullptr) << Diags.str();
    ProfileIngestReport Report = S->ingestProfile(Corrupt);
    EXPECT_TRUE(Report.Ok) << Report.Error;
    EXPECT_EQ(Report.Quarantined, std::vector<std::string>{"mid"});
    return S;
  };
  DiagnosticEngine D1, D2;
  auto CsrSession = IngestAndEstimate(TimeKernel::Csr, D1);
  auto RefSession = IngestAndEstimate(TimeKernel::NodeObjects, D2);
  ASSERT_TRUE(CsrSession && RefSession);

  // The quarantined function's own query carries the tag in both kernels.
  EstimateResult CsrMid = CsrSession->estimate(EstimateRequest("mid"));
  EstimateResult RefMid = RefSession->estimate(EstimateRequest("mid"));
  ASSERT_TRUE(CsrMid.Ok) << CsrMid.Error;
  ASSERT_TRUE(RefMid.Ok) << RefMid.Error;
  EXPECT_TRUE(CsrMid.Quarantined);
  EXPECT_TRUE(RefMid.Quarantined);
  EXPECT_EQ(CsrMid.Time, RefMid.Time);
  EXPECT_EQ(CsrMid.Var, RefMid.Var);

  EstimateResult CsrRes = CsrSession->estimateEntry();
  EstimateResult RefRes = RefSession->estimateEntry();
  ASSERT_TRUE(CsrRes.Ok) << CsrRes.Error;
  ASSERT_TRUE(RefRes.Ok) << RefRes.Error;
  EXPECT_EQ(CsrRes.Time, RefRes.Time);
  EXPECT_EQ(CsrRes.Var, RefRes.Var);
  for (const auto &F : Prog->functions()) {
    const std::vector<NodeEstimates> &EA = CsrRes.Analysis->estimatesOf(*F);
    const std::vector<NodeEstimates> &EB = RefRes.Analysis->estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size()) << F->name();
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << "degraded estimates of " << F->name() << " differ between kernels";
  }
}

} // namespace
