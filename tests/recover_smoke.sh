#!/usr/bin/env bash
#===--- tests/recover_smoke.sh - Kill-9-and-recover e2e test -------------===//
#
# Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
#
# The crash-safety acceptance run: populate a ptran-serve with sessions,
# runs, streamed deltas and ingested profiles, then kill it (plain kill -9
# and every injected crash point: torn append, post-append, mid-snapshot,
# mid-rotate) and prove a restarted daemon answers full-precision probe
# estimates byte-for-byte identical to a reference recovery of the same
# durable prefix. A torn journal tail must be quarantined with a
# structured diagnostic, never rejected wholesale. Every daemon start is
# held to a boot-recovery wall-clock SLO (override the default budget with
# PTRAN_RECOVERY_SLO_MS). Usage:
#
#   recover_smoke.sh <ptran-serve> <ptran-bench-client> <work-dir>
#
#===----------------------------------------------------------------------===//

set -u

SERVE=$1
CLIENT=$2
WORK=$3

RECOVERY_SLO_MS=${PTRAN_RECOVERY_SLO_MS:-60000}

rm -rf "$WORK"
mkdir -p "$WORK"
STATE="$WORK/state"
# Unix socket paths are capped at ~107 bytes; build trees can be deep, so
# fall back to /tmp when the work dir would not fit.
SOCK="$WORK/serve.sock"
SOCK2="$WORK/serve2.sock"
if [ ${#SOCK2} -ge 100 ]; then
  SOCK=$(mktemp -u /tmp/ptran-recover-XXXXXX.sock)
  SOCK2="$SOCK.2"
fi

PROBES="--probe=bench-0 --probe=bench-0:work --probe=bench-1 --probe=bench-1:tail"
RC=0
SERVE_PID=

fail() {
  echo "recover_smoke: $*" >&2
  RC=1
}

# start_daemon <log-file> <socket> [extra daemon args...]; the PTRAN_FAULT
# environment (if exported by the caller) rides along. Waits for the
# "listening on" log line — a kill -9 leaves a stale socket FILE behind,
# so the file existing does not mean the new daemon has bound yet.
start_daemon() {
  local LOG=$1 S=$2
  shift 2
  local T0
  T0=$(date +%s%3N)
  "$SERVE" --socket="$S" --state-dir="$STATE" --fsync=always \
    --snapshot-interval-ms=0 "$@" >"$LOG" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$LOG" 2>/dev/null && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      return 1
    fi
    sleep 0.1
  done
  grep -q "listening on" "$LOG" 2>/dev/null || return 1
  # Boot recovery (journal replay + snapshot restore) is an availability
  # promise, not just a correctness one: hold it to the CI SLO budget.
  local MS=$(( $(date +%s%3N) - T0 ))
  if [ "$MS" -gt "$RECOVERY_SLO_MS" ]; then
    fail "boot recovery took ${MS}ms (SLO ${RECOVERY_SLO_MS}ms)"
  fi
  return 0
}

# wait_exit <pid> <expected-rc> <what>
wait_exit() {
  local PID=$1 WANT=$2 WHAT=$3 GOT
  wait "$PID"
  GOT=$?
  if [ "$GOT" -ne "$WANT" ]; then
    fail "$WHAT exited with rc=$GOT, wanted $WANT"
  fi
}

#--- 1. Populate a daemon, record reference probes, kill -9 it. ----------===//

if ! start_daemon "$WORK/boot.log" "$SOCK"; then
  echo "recover_smoke: daemon never came up" >&2
  cat "$WORK/boot.log" >&2
  exit 1
fi
"$CLIENT" --socket="$SOCK" --setup-only --sessions=2 \
  >"$WORK/setup.log" 2>&1 || fail "session setup failed"
"$CLIENT" --socket="$SOCK" --connections=8 --requests=12 --sessions=2 \
  --ingest-every=4 --stream-every=3 >"$WORK/traffic.log" 2>&1 \
  || fail "mixed traffic failed"
"$CLIENT" --socket="$SOCK" $PROBES >"$WORK/ref.out" 2>&1 \
  || fail "reference probes failed"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null

#--- 2. Restart on the same socket path (stale file left behind by the ---===//
#--- kill must be probed and reclaimed) and demand identical answers. ----===//

if ! start_daemon "$WORK/recover1.log" "$SOCK"; then
  fail "restart after kill -9 failed"
  cat "$WORK/recover1.log" >&2
  exit 1
fi
grep -q "recovered 2 session(s)" "$WORK/recover1.log" \
  || fail "recovery log does not report 2 sessions"
"$CLIENT" --socket="$SOCK" $PROBES >"$WORK/recover1.out" 2>&1 \
  || fail "post-recovery probes failed"
diff -u "$WORK/ref.out" "$WORK/recover1.out" >&2 \
  || fail "recovered estimates differ from the pre-kill reference"

# Graceful shutdown: drains, checkpoints (snapshots + rotated journal),
# removes the socket.
kill -TERM "$SERVE_PID"
wait_exit "$SERVE_PID" 0 "daemon (graceful shutdown)"
[ -e "$SOCK" ] && fail "socket file left behind after graceful shutdown"
ls "$STATE"/snap-*.snap >/dev/null 2>&1 \
  || fail "graceful shutdown wrote no snapshots"

#--- 3. Restart from snapshots + empty journal; answers still identical. -===//

start_daemon "$WORK/recover2.log" "$SOCK" || fail "snapshot restart failed"
"$CLIENT" --socket="$SOCK" $PROBES >"$WORK/recover2.out" 2>&1 \
  || fail "snapshot-recovery probes failed"
diff -u "$WORK/ref.out" "$WORK/recover2.out" >&2 \
  || fail "snapshot-recovered estimates differ from the reference"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null

#--- 4. Torn append: the injected kill -9 lands mid-frame; recovery must -===//
#--- quarantine exactly the torn tail and keep every prior answer. -------===//

export PTRAN_FAULT="io.torn_write=1"
start_daemon "$WORK/torn.log" "$SOCK" || fail "torn-write daemon failed to boot"
unset PTRAN_FAULT
# The first journaled mutation dies mid-append; the client sees the hangup.
"$CLIENT" --socket="$SOCK" --setup-only --sessions=1 >/dev/null 2>&1
wait_exit "$SERVE_PID" 42 "daemon (torn append)"

start_daemon "$WORK/recover3.log" "$SOCK" || fail "restart after torn append failed"
grep -q "journal tail quarantined" "$WORK/recover3.log" \
  || fail "torn tail was not quarantined with a diagnostic"
[ -f "$STATE/journal.ptwj.quarantine" ] \
  || fail "no quarantine file after a torn append"
"$CLIENT" --socket="$SOCK" $PROBES >"$WORK/recover3.out" 2>&1 \
  || fail "post-torn-append probes failed"
diff -u "$WORK/ref.out" "$WORK/recover3.out" >&2 \
  || fail "a torn (unacknowledged) append changed recovered estimates"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null

# probe_both_recoveries <tag> — recover the state dir twice (original +
# a byte copy) in two independent daemons and demand byte-identical probe
# answers: the "reference session built from the durable prefix" check.
probe_both_recoveries() {
  local TAG=$1
  rm -rf "$STATE.copy"
  cp -a "$STATE" "$STATE.copy"
  start_daemon "$WORK/$TAG-a.log" "$SOCK" || fail "$TAG: recovery A failed"
  local PID_A=$SERVE_PID
  "$SERVE" --socket="$SOCK2" --state-dir="$STATE.copy" --fsync=always \
    --snapshot-interval-ms=0 >"$WORK/$TAG-b.log" 2>&1 &
  local PID_B=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/$TAG-b.log" 2>/dev/null && break
    kill -0 "$PID_B" 2>/dev/null || break
    sleep 0.1
  done
  "$CLIENT" --socket="$SOCK" $PROBES >"$WORK/$TAG-a.out" 2>&1 \
    || fail "$TAG: probes on recovery A failed"
  "$CLIENT" --socket="$SOCK2" $PROBES >"$WORK/$TAG-b.out" 2>&1 \
    || fail "$TAG: probes on recovery B failed"
  diff -u "$WORK/$TAG-a.out" "$WORK/$TAG-b.out" >&2 \
    || fail "$TAG: two recoveries of the same durable prefix disagree"
  kill -9 "$PID_A" "$PID_B" 2>/dev/null
  wait "$PID_A" 2>/dev/null
  wait "$PID_B" 2>/dev/null
  rm -rf "$STATE.copy"
}

#--- 5. Crash right after a durable append: the acknowledged-or-durable --===//
#--- frame survives whole, and replaying it is deterministic. ------------===//

export PTRAN_FAULT="crash.at=durable.append"
start_daemon "$WORK/append.log" "$SOCK" || fail "append-crash daemon failed to boot"
unset PTRAN_FAULT
"$CLIENT" --socket="$SOCK" --setup-only --sessions=1 >/dev/null 2>&1
wait_exit "$SERVE_PID" 42 "daemon (crash at durable.append)"
probe_both_recoveries append

#--- 6. Crash mid-snapshot (between the tmp write and the rename): the ---===//
#--- periodic checkpoint dies; recovery still has journal + old snaps. ---===//

export PTRAN_FAULT="crash.at=durable.snapshot"
"$SERVE" --socket="$SOCK" --state-dir="$STATE" --fsync=always \
  --snapshot-interval-ms=200 >"$WORK/snapshot.log" 2>&1 &
SERVE_PID=$!
unset PTRAN_FAULT
wait_exit "$SERVE_PID" 42 "daemon (crash at durable.snapshot)"
probe_both_recoveries snapshot

#--- 7. Crash mid-rotate (after the snapshots, before the journal is -----===//
#--- replaced): the old journal survives; watermarks skip the replay. ----===//

export PTRAN_FAULT="crash.at=durable.truncate"
"$SERVE" --socket="$SOCK" --state-dir="$STATE" --fsync=always \
  --snapshot-interval-ms=200 >"$WORK/rotate.log" 2>&1 &
SERVE_PID=$!
unset PTRAN_FAULT
wait_exit "$SERVE_PID" 42 "daemon (crash at durable.truncate)"
probe_both_recoveries rotate

#--- 8. One final clean boot and graceful exit on the battered state. ----===//

start_daemon "$WORK/final.log" "$SOCK" || fail "final restart failed"
"$CLIENT" --socket="$SOCK" $PROBES --shutdown >"$WORK/final.out" 2>&1 \
  || fail "final probes + shutdown failed"
wait_exit "$SERVE_PID" 0 "daemon (final shutdown)"

if [ "$RC" -ne 0 ]; then
  echo "=== daemon logs ===" >&2
  tail -n 20 "$WORK"/*.log >&2
fi
exit $RC
