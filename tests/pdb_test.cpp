//===--- tests/pdb_test.cpp - Program database tests ----------------------===//
//
// The PTRAN-style program database: accumulation across runs,
// serialization round trips, merging, fingerprint guarding and failure
// handling on malformed input.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "pdb/ProgramDatabase.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ptran;
using namespace ptran::testing;

namespace {

struct PdbFixture {
  Figure1Program Fix;
  std::unique_ptr<Estimator> Est;
  DiagnosticEngine Diags;

  PdbFixture() {
    Fix = makeFigure1();
    Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
    EXPECT_NE(Est, nullptr) << Diags.str();
  }

  ProgramDatabase recordOneRun() {
    EXPECT_TRUE(Est->profiledRun().Ok);
    ProgramDatabase Db;
    for (const auto &F : Fix.Prog->functions())
      Db.accumulateTotals(Est->analysis().of(*F), Est->totalsFor(*F));
    Db.noteRunCompleted();
    Est->runtimeMutable().reset();
    return Db;
  }
};

TEST(ProgramDatabaseTest, AccumulateAndQuery) {
  PdbFixture Fx;
  ProgramDatabase Db = Fx.recordOneRun();
  EXPECT_EQ(Db.runsRecorded(), 1u);

  const FunctionAnalysis &FA = Fx.Est->analysis().of(*Fx.Fix.Main);
  FrequencyTotals T = Db.totalsFor(FA);
  ASSERT_TRUE(T.Ok);
  EXPECT_DOUBLE_EQ(
      T.condTotal({FA.ecfg().start(), CfgLabel::U}), 1.0);

  // Unknown function: not Ok.
  Program Other;
  DiagnosticEngine D2;
  FunctionBuilder B(Other, "stranger", D2);
  B.ret();
  ASSERT_NE(B.finish(), nullptr);
  auto PA2 = ProgramAnalysis::compute(Other, D2);
  // "stranger" has no entry named main -> compute on the function alone.
  auto FA2 = FunctionAnalysis::compute(*Other.findFunction("stranger"), D2);
  ASSERT_NE(FA2, nullptr) << D2.str();
  EXPECT_FALSE(Db.totalsFor(*FA2).Ok);
  (void)PA2;
}

TEST(ProgramDatabaseTest, SerializeDeserializeRoundTrip) {
  PdbFixture Fx;
  ProgramDatabase Db = Fx.recordOneRun();
  Db.accumulateLoopMoments(*Fx.Fix.Main, 2, {3.0, 30.0, 320.0});

  std::string Text = Db.serialize();
  DiagnosticEngine Diags;
  auto Loaded = ProgramDatabase::deserialize(Text, Diags);
  ASSERT_TRUE(Loaded.has_value()) << Diags.str();
  EXPECT_EQ(Loaded->runsRecorded(), 1u);
  EXPECT_EQ(Loaded->serialize(), Text);

  const LoopFrequencyStats::Moments *M = Loaded->momentsFor(*Fx.Fix.Main, 2);
  ASSERT_NE(M, nullptr);
  EXPECT_DOUBLE_EQ(M->Entries, 3.0);
  EXPECT_DOUBLE_EQ(M->mean(), 10.0);
}

TEST(ProgramDatabaseTest, MergeSumsRecords) {
  PdbFixture Fx;
  ProgramDatabase A = Fx.recordOneRun();
  ProgramDatabase B = Fx.recordOneRun();

  const FunctionAnalysis &FA = Fx.Est->analysis().of(*Fx.Fix.Main);
  double Single = A.totalsFor(FA).condTotal({FA.ecfg().start(), CfgLabel::U});

  DiagnosticEngine Diags;
  A.merge(B, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(A.runsRecorded(), 2u);
  EXPECT_DOUBLE_EQ(
      A.totalsFor(FA).condTotal({FA.ecfg().start(), CfgLabel::U}),
      2.0 * Single);

  // Frequencies derived from the merged store still give Figure 3.
  Frequencies Freqs = computeFrequencies(FA, A.totalsFor(FA));
  std::map<const Function *, Frequencies> FreqMap;
  for (const auto &F : Fx.Fix.Prog->functions())
    FreqMap[F.get()] = computeFrequencies(
        Fx.Est->analysis().of(*F),
        A.totalsFor(Fx.Est->analysis().of(*F)).Ok
            ? A.totalsFor(Fx.Est->analysis().of(*F))
            : Fx.Est->totalsFor(*F));
  (void)Freqs;
}

TEST(ProgramDatabaseTest, FingerprintMismatchSkipsFunction) {
  PdbFixture Fx;
  ProgramDatabase Db = Fx.recordOneRun();

  // Tamper with the serialized fingerprint (second digit, so the value
  // stays within uint64 range and still parses).
  std::string Text = Db.serialize();
  size_t Pos = Text.find("function main ");
  ASSERT_NE(Pos, std::string::npos);
  Text[Pos + 15] = Text[Pos + 15] == '1' ? '2' : '1';

  DiagnosticEngine Diags;
  auto Tampered = ProgramDatabase::deserialize(Text, Diags);
  ASSERT_TRUE(Tampered.has_value());
  const FunctionAnalysis &FA = Fx.Est->analysis().of(*Fx.Fix.Main);
  EXPECT_FALSE(Tampered->totalsFor(FA).Ok);

  // Merging incompatible records warns and skips.
  ProgramDatabase Fresh = Fx.recordOneRun();
  Fresh.merge(*Tampered, Diags);
  EXPECT_FALSE(Diags.diagnostics().empty());
}

TEST(ProgramDatabaseTest, RejectsMalformedInput) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProgramDatabase::deserialize("not a pdb", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());

  Diags.clear();
  EXPECT_FALSE(
      ProgramDatabase::deserialize("ptran-pdb 1\ncond 1 2 3\n", Diags)
          .has_value()); // cond before any function record.

  Diags.clear();
  EXPECT_FALSE(
      ProgramDatabase::deserialize("ptran-pdb 1\nbogus line\n", Diags)
          .has_value());
}

TEST(ProgramDatabaseTest, FileRoundTrip) {
  PdbFixture Fx;
  ProgramDatabase Db = Fx.recordOneRun();

  std::string Path = ::testing::TempDir() + "/ptran_pdb_test.txt";
  DiagnosticEngine Diags;
  ASSERT_TRUE(Db.saveToFile(Path, Diags)) << Diags.str();
  auto Loaded = ProgramDatabase::loadFromFile(Path, Diags);
  ASSERT_TRUE(Loaded.has_value()) << Diags.str();
  EXPECT_EQ(Loaded->serialize(), Db.serialize());
  std::remove(Path.c_str());

  EXPECT_FALSE(
      ProgramDatabase::loadFromFile("/nonexistent/dir/x.pdb", Diags)
          .has_value());
}

} // namespace
