//===--- tests/stream_test.cpp - Streaming counter-delta ingest -----------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
// Covers the CounterDeltaStream subsystem: cell addressing, bad-delta
// rejection, single- and multi-writer fold determinism (bit-identical
// estimates against a serial accumulateTotals reference), epoch snapshot
// consistency (a concurrent query never observes a torn half-epoch),
// the writer-vs-flusher-vs-query race (the TSan preset reruns this
// binary), saturation clamping at the fold, and the per-flush stream.*
// observability counters.
//
//===----------------------------------------------------------------------===//

#include "obs/Observability.h"
#include "parser/Parser.h"
#include "session/EstimationSession.h"
#include "stream/DeltaStream.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

using namespace ptran;

namespace {

/// Same diamond call graph the session tests use: main -> mid -> {leafa,
/// leafb}, main -> leafb.
const char DiamondSource[] = R"FTN(
program main
  x = 0.0
  call mid(x)
  call leafb(x)
  print x
end
subroutine mid(x)
  call leafa(x)
  call leafb(x)
end
subroutine leafa(x)
  do 10 i = 1, 4
    x = x + 1.0
10 continue
end
subroutine leafb(x)
  x = x + 2.0
end
)FTN";

std::unique_ptr<Program> parseDiamond() {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(DiamondSource, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// A fresh session over \p P with one deterministic profiled run folded
/// in — the common baseline of every determinism comparison here.
std::unique_ptr<EstimationSession> makeSession(const Program &P,
                                               DiagnosticEngine &Diags) {
  auto S = EstimationSession::create(P, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  EXPECT_NE(S, nullptr) << Diags.str();
  if (S) {
    EXPECT_TRUE(S->profiledRun().Ok);
  }
  return S;
}

/// Byte-level equality of every node estimate of every function.
void expectBitIdentical(const Program &Prog, const TimeAnalysis &A,
                        const TimeAnalysis &B) {
  for (const auto &F : Prog.functions()) {
    const std::vector<NodeEstimates> &EA = A.estimatesOf(*F);
    const std::vector<NodeEstimates> &EB = B.estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size()) << F->name();
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << "estimates of " << F->name() << " differ bitwise";
  }
}

/// The invocation condition (START, U) of \p F as a stream cell address.
std::pair<unsigned, unsigned> invocationCell(const EstimationSession &S,
                                             const CounterDeltaStream &St,
                                             const Function &F) {
  unsigned FuncIdx = St.functionIndexOf(F);
  EXPECT_LT(FuncIdx, St.numFunctions());
  const FunctionAnalysis &FA = S.estimator().analysis().of(F);
  unsigned CondIdx =
      St.conditionIndexOf(FuncIdx, {FA.ecfg().start(), CfgLabel::U});
  EXPECT_LT(CondIdx, St.numConditions(FuncIdx));
  return {FuncIdx, CondIdx};
}

TEST(CounterDeltaStream, CellAddressingCoversAnalyzableFunctions) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  auto Stream = CounterDeltaStream::create(*S);
  ASSERT_NE(Stream, nullptr);

  ASSERT_EQ(Stream->numFunctions(), Prog->functions().size());
  for (unsigned I = 0; I != Stream->numFunctions(); ++I) {
    const Function *F = Stream->functionAt(I);
    EXPECT_EQ(Stream->functionIndexOf(*F), I);
    EXPECT_GT(Stream->numConditions(I), 0u) << F->name();
    // Every advertised condition round-trips through conditionIndexOf.
    for (unsigned C = 0; C != Stream->numConditions(I); ++C)
      EXPECT_EQ(Stream->conditionIndexOf(I, Stream->conditionAt(I, C)), C);
  }
}

TEST(CounterDeltaStream, RejectsBadDeltasWithoutApplyingThem) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  auto Stream = CounterDeltaStream::create(*S);

  CounterDeltaStream::Writer W = Stream->acquireWriter();
  ASSERT_TRUE(W);
  EXPECT_FALSE(W.add(Stream->numFunctions(), 0, 1.0)); // bad function
  EXPECT_FALSE(W.add(0, Stream->numConditions(0), 1.0)); // bad condition
  EXPECT_FALSE(W.add(0, 0, -1.0));                       // negative
  EXPECT_FALSE(W.add(0, 0, std::nan("")));               // non-finite
  W.release();

  CounterDeltaStream::FlushReport FR = Stream->flush();
  EXPECT_EQ(FR.Cells, 0u);
  EXPECT_EQ(FR.Functions, 0u);
  CounterDeltaStream::Stats St = Stream->stats();
  EXPECT_EQ(St.Appended, 0u);
  EXPECT_EQ(St.Dropped, 4u);
  EXPECT_EQ(St.Epochs, 1u);
}

TEST(CounterDeltaStream, WriterSlotsExhaustAndRecycle) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  CounterDeltaStream::Options O;
  O.MaxWriters = 1;
  auto Stream = CounterDeltaStream::create(*S, O);

  CounterDeltaStream::Writer W1 = Stream->acquireWriter();
  ASSERT_TRUE(W1);
  CounterDeltaStream::Writer W2 = Stream->acquireWriter();
  EXPECT_FALSE(W2);
  EXPECT_FALSE(W2.add(0, 0, 1.0)); // a falsy writer appends nothing
  W1.release();
  CounterDeltaStream::Writer W3 = Stream->acquireWriter();
  EXPECT_TRUE(W3);
}

TEST(CounterDeltaStream, SingleWriterFoldMatchesSerialAccumulate) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  auto S = makeSession(*Prog, D1);
  auto Ref = makeSession(*Prog, D2);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(Ref, nullptr);
  auto Stream = CounterDeltaStream::create(*S);

  // Stream three invocation bumps into leafa across two epochs...
  const Function *LeafA = Prog->findFunction("leafa");
  ASSERT_NE(LeafA, nullptr);
  auto [FuncIdx, CondIdx] = invocationCell(*S, *Stream, *LeafA);
  CounterDeltaStream::Writer W = Stream->acquireWriter();
  ASSERT_TRUE(W.add(FuncIdx, CondIdx, 1.0));
  ASSERT_TRUE(W.add(FuncIdx, CondIdx, 1.0));
  Stream->flush();
  ASSERT_TRUE(W.add(FuncIdx, CondIdx, 1.0));
  CounterDeltaStream::FlushReport FR = Stream->flush();
  EXPECT_EQ(FR.Cells, 1u);
  EXPECT_EQ(FR.Functions, 1u);

  // ...and the same three bumps through the serial API.
  const FunctionAnalysis &FA = Ref->estimator().analysis().of(*LeafA);
  FrequencyTotals Delta;
  Delta.Cond[{FA.ecfg().start(), CfgLabel::U}] = 3.0;
  Ref->accumulateTotals(*LeafA, Delta);

  EstimateResult RS = S->estimateEntry();
  EstimateResult RR = Ref->estimateEntry();
  ASSERT_TRUE(RS.Ok) << RS.Error;
  ASSERT_TRUE(RR.Ok) << RR.Error;
  expectBitIdentical(*Prog, *RS.Analysis, *RR.Analysis);
}

/// The deterministic append schedule every writer thread follows; the
/// serial expectation below replays it to the same cells.
void appendSchedule(const CounterDeltaStream &Stream, unsigned WriterId,
                    unsigned Count,
                    const std::function<void(unsigned, unsigned, double)> &Do) {
  for (unsigned I = 0; I != Count; ++I) {
    unsigned F = (WriterId + I) % Stream.numFunctions();
    if (Stream.numConditions(F) == 0)
      continue;
    unsigned C = I % Stream.numConditions(F);
    Do(F, C, 1.0);
  }
}

TEST(CounterDeltaStream, MultiWriterInterleavingsAreBitIdentical) {
  // Any interleaving of the same multiset of appends must produce
  // bit-identical estimates after the final flush: counts are integer
  // doubles below 2^53, so cell sums are exact and order-free, and the
  // drain order is fixed. Three rounds vary the actual interleaving; one
  // serial reference session receives the aggregated totals directly.
  std::unique_ptr<Program> Prog = parseDiamond();
  constexpr unsigned Writers = 4;
  constexpr unsigned PerWriter = 1000;

  DiagnosticEngine DRef;
  auto Ref = makeSession(*Prog, DRef);
  ASSERT_NE(Ref, nullptr);
  bool RefFilled = false;

  for (int Round = 0; Round != 3; ++Round) {
    DiagnosticEngine Diags;
    auto S = makeSession(*Prog, Diags);
    ASSERT_NE(S, nullptr);
    auto Stream = CounterDeltaStream::create(*S);

    {
      std::vector<std::jthread> Threads;
      for (unsigned WId = 0; WId != Writers; ++WId)
        Threads.emplace_back([&, WId] {
          CounterDeltaStream::Writer W = Stream->acquireWriter();
          EXPECT_TRUE(W);
          appendSchedule(*Stream, WId, PerWriter,
                         [&](unsigned F, unsigned C, double D) {
                           EXPECT_TRUE(W.add(F, C, D));
                         });
        });
    }
    Stream->flush();
    EXPECT_EQ(Stream->stats().Dropped, 0u);

    if (!RefFilled) {
      RefFilled = true;
      // Serial expectation: replay every writer's schedule into per-
      // function aggregate deltas.
      std::map<unsigned, std::map<unsigned, double>> Cells;
      for (unsigned WId = 0; WId != Writers; ++WId)
        appendSchedule(*Stream, WId, PerWriter,
                       [&](unsigned F, unsigned C, double D) {
                         Cells[F][C] += D;
                       });
      for (const auto &[F, Conds] : Cells) {
        FrequencyTotals Delta;
        for (const auto &[C, Total] : Conds)
          Delta.Cond[Stream->conditionAt(F, C)] = Total;
        Ref->accumulateTotals(*Stream->functionAt(F), Delta);
      }
    }

    EstimateResult RS = S->estimateEntry();
    EstimateResult RR = Ref->estimateEntry();
    ASSERT_TRUE(RS.Ok) << RS.Error;
    ASSERT_TRUE(RR.Ok) << RR.Error;
    expectBitIdentical(*Prog, *RS.Analysis, *RR.Analysis);
  }
}

TEST(CounterDeltaStream, QueriesNeverObserveATornEpoch) {
  // Every epoch bumps leafa AND leafb together; a query racing the
  // flusher must always see a paired count — its answer must be one of
  // the per-epoch-prefix reference answers, never a mixed cut.
  std::unique_ptr<Program> Prog = parseDiamond();
  constexpr unsigned Epochs = 8;

  const Function *LeafA = Prog->findFunction("leafa");
  const Function *LeafB = Prog->findFunction("leafb");
  ASSERT_NE(LeafA, nullptr);
  ASSERT_NE(LeafB, nullptr);

  // Reference answers for every consistent prefix 0..Epochs.
  std::set<double> ValidTimes;
  for (unsigned E = 0; E <= Epochs; ++E) {
    DiagnosticEngine Diags;
    auto Ref = makeSession(*Prog, Diags);
    ASSERT_NE(Ref, nullptr);
    for (const Function *F : {LeafA, LeafB}) {
      if (E == 0)
        continue;
      const FunctionAnalysis &FA = Ref->estimator().analysis().of(*F);
      FrequencyTotals Delta;
      Delta.Cond[{FA.ecfg().start(), CfgLabel::U}] = static_cast<double>(E);
      Ref->accumulateTotals(*F, Delta);
    }
    EstimateResult R = Ref->estimateEntry();
    ASSERT_TRUE(R.Ok) << R.Error;
    ValidTimes.insert(R.Time);
  }
  // The test has teeth only if the prefixes are distinguishable.
  ASSERT_EQ(ValidTimes.size(), Epochs + 1u);

  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  auto Stream = CounterDeltaStream::create(*S);
  auto [AF, AC] = invocationCell(*S, *Stream, *LeafA);
  auto [BF, BC] = invocationCell(*S, *Stream, *LeafB);

  std::atomic<bool> Done{false};
  std::jthread Query([&] {
    while (!Done.load(std::memory_order_relaxed)) {
      EstimateResult R = S->estimateEntry();
      EXPECT_TRUE(R.Ok) << R.Error;
      EXPECT_TRUE(ValidTimes.count(R.Time))
          << "torn epoch observed: TIME " << R.Time
          << " matches no consistent prefix";
    }
  });

  CounterDeltaStream::Writer W = Stream->acquireWriter();
  ASSERT_TRUE(W);
  for (unsigned E = 0; E != Epochs; ++E) {
    EXPECT_TRUE(W.add(AF, AC, 1.0));
    EXPECT_TRUE(W.add(BF, BC, 1.0));
    Stream->flush();
  }
  Done.store(true, std::memory_order_relaxed);
}

TEST(CounterDeltaStream, WritersFlusherAndQueriesRaceCleanly) {
  // The TSan rerun of this binary certifies the epoch protocol: writers
  // appending, a flusher sealing epochs and two query threads estimating,
  // all concurrently. The final flush must still fold to the serial
  // reference bit-identically.
  std::unique_ptr<Program> Prog = parseDiamond();
  constexpr unsigned Writers = 4;
  constexpr unsigned PerWriter = 2000;

  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  auto Stream = CounterDeltaStream::create(*S);

  {
    std::atomic<bool> WritersDone{false};
    std::vector<std::jthread> Threads;
    for (unsigned WId = 0; WId != Writers; ++WId)
      Threads.emplace_back([&, WId] {
        CounterDeltaStream::Writer W = Stream->acquireWriter();
        EXPECT_TRUE(W);
        appendSchedule(*Stream, WId, PerWriter,
                       [&](unsigned F, unsigned C, double D) {
                         EXPECT_TRUE(W.add(F, C, D));
                       });
      });
    Threads.emplace_back([&] {
      while (!WritersDone.load(std::memory_order_relaxed)) {
        Stream->flush();
        std::this_thread::yield();
      }
    });
    for (int Q = 0; Q != 2; ++Q)
      Threads.emplace_back([&] {
        for (int I = 0; I != 25; ++I) {
          EstimateResult R = S->estimateEntry();
          EXPECT_TRUE(R.Ok) << R.Error;
        }
      });
    // Join the writers (destroying their jthreads) before releasing the
    // flusher, so every append is covered by at least one more flush.
    for (unsigned WId = 0; WId != Writers; ++WId)
      Threads[WId].join();
    WritersDone.store(true, std::memory_order_relaxed);
  }
  Stream->flush();

  DiagnosticEngine DRef;
  auto Ref = makeSession(*Prog, DRef);
  ASSERT_NE(Ref, nullptr);
  std::map<unsigned, std::map<unsigned, double>> Cells;
  for (unsigned WId = 0; WId != Writers; ++WId)
    appendSchedule(*Stream, WId, PerWriter,
                   [&](unsigned F, unsigned C, double D) { Cells[F][C] += D; });
  for (const auto &[F, Conds] : Cells) {
    FrequencyTotals Delta;
    for (const auto &[C, Total] : Conds)
      Delta.Cond[Stream->conditionAt(F, C)] = Total;
    Ref->accumulateTotals(*Stream->functionAt(F), Delta);
  }
  EstimateResult RS = S->estimateEntry();
  EstimateResult RR = Ref->estimateEntry();
  ASSERT_TRUE(RS.Ok) << RS.Error;
  ASSERT_TRUE(RR.Ok) << RR.Error;
  expectBitIdentical(*Prog, *RS.Analysis, *RR.Analysis);
}

TEST(CounterDeltaStream, FoldClampsCellTotalsAtTwoPow53) {
  // Two appends of the saturation limit overflow the cell past 2^53; the
  // fold must clamp (not hand the session an over-limit delta it would
  // reject whole), and the session's saturating accumulator must emit the
  // lower-bounds diagnostic and match a reference fed one clamped delta.
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  auto S = makeSession(*Prog, D1);
  auto Ref = makeSession(*Prog, D2);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(Ref, nullptr);
  auto Stream = CounterDeltaStream::create(*S);

  const Function *LeafA = Prog->findFunction("leafa");
  ASSERT_NE(LeafA, nullptr);
  auto [FuncIdx, CondIdx] = invocationCell(*S, *Stream, *LeafA);
  CounterDeltaStream::Writer W = Stream->acquireWriter();
  ASSERT_TRUE(W.add(FuncIdx, CondIdx, CounterSaturationLimit));
  ASSERT_TRUE(W.add(FuncIdx, CondIdx, CounterSaturationLimit));
  CounterDeltaStream::FlushReport FR = Stream->flush();
  EXPECT_EQ(FR.Cells, 1u);

  const FunctionAnalysis &FA = Ref->estimator().analysis().of(*LeafA);
  FrequencyTotals Delta;
  Delta.Cond[{FA.ecfg().start(), CfgLabel::U}] = CounterSaturationLimit;
  Ref->accumulateTotals(*LeafA, Delta);

  EstimateResult RS = S->estimateEntry();
  EstimateResult RR = Ref->estimateEntry();
  ASSERT_TRUE(RS.Ok) << RS.Error;
  ASSERT_TRUE(RR.Ok) << RR.Error;
  expectBitIdentical(*Prog, *RS.Analysis, *RR.Analysis);
  EXPECT_NE(D1.str().find("saturated at 2^53"), std::string::npos)
      << D1.str();
}

TEST(CounterDeltaStream, ReportsStreamCountersPerFlush) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = makeSession(*Prog, Diags);
  ASSERT_NE(S, nullptr);
  ObsRegistry Reg;
  CounterDeltaStream::Options O;
  O.Obs = &Reg;
  auto Stream = CounterDeltaStream::create(*S, O);

  const Function *LeafA = Prog->findFunction("leafa");
  ASSERT_NE(LeafA, nullptr);
  auto [FuncIdx, CondIdx] = invocationCell(*S, *Stream, *LeafA);
  CounterDeltaStream::Writer W = Stream->acquireWriter();
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(W.add(FuncIdx, CondIdx, 1.0));
  EXPECT_FALSE(W.add(FuncIdx, CondIdx, -1.0));
  Stream->flush();

  EXPECT_EQ(Reg.counterValue("stream.appended"), 5u);
  EXPECT_EQ(Reg.counterValue("stream.dropped"), 1u);
  EXPECT_EQ(Reg.counterValue("stream.flushed"), 1u);
  EXPECT_EQ(Reg.counterValue("stream.epochs"), 1u);

  // A second flush with nothing pending reports only the epoch.
  Stream->flush();
  EXPECT_EQ(Reg.counterValue("stream.appended"), 5u);
  EXPECT_EQ(Reg.counterValue("stream.epochs"), 2u);
}

} // namespace
