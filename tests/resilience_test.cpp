//===--- tests/resilience_test.cpp - Deadlines, budgets, retrying IO ------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
// Covers the resilience layer: CancelToken trip conditions and message
// structure, the deterministic backoff schedule, retryWithBackoff's
// attempt taxonomy, retry-wrapped profile IO under injected transient
// failures, token-aware passes (analysis, recovery, time analysis), and
// the session-level deadline policies — Fail must be atomic, Degrade must
// keep completed functions bit-identical to an unbounded run.
//
// Wall clocks are nondeterministic, so every pipeline test trips its token
// through the step budget instead of a real deadline.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "cost/Estimator.h"
#include "obs/Observability.h"
#include "profile/ProfileFile.h"
#include "session/EstimationSession.h"
#include "support/Cancellation.h"
#include "support/FaultInjection.h"
#include "support/Retry.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

using namespace ptran;

namespace {

//===--- CancelToken ------------------------------------------------------===//

TEST(CancelToken, StartsLiveAndCountsPolls) {
  CancelToken T;
  EXPECT_FALSE(T.expired());
  EXPECT_EQ(T.reason(), CancelReason::None);
  EXPECT_FALSE(T.checkpoint());
  EXPECT_FALSE(T.checkpoint(5));
  EXPECT_EQ(T.polls(), 2u);
  EXPECT_EQ(T.stepsUsed(), 6u);
}

TEST(CancelToken, RequestCancelTripsStickyAndFirstReasonWins) {
  CancelToken T;
  T.requestCancel();
  EXPECT_TRUE(T.expired());
  EXPECT_EQ(T.reason(), CancelReason::Cancelled);
  // A later deadline cannot replace the first reason.
  T.setDeadlineIn(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(T.checkpoint());
  EXPECT_EQ(T.reason(), CancelReason::Cancelled);
}

TEST(CancelToken, PastDeadlineTripsAtTheNextPoll) {
  CancelToken T;
  T.setDeadlineIn(std::chrono::nanoseconds(-1));
  // expired() is a pure load; only checkpoint() reads the clock.
  EXPECT_FALSE(T.expired());
  EXPECT_TRUE(T.checkpoint());
  EXPECT_EQ(T.reason(), CancelReason::Deadline);
}

TEST(CancelToken, StepBudgetTripsDeterministically) {
  CancelToken T;
  T.setStepBudget(10);
  for (int I = 0; I < 10; ++I)
    EXPECT_FALSE(T.checkpoint()) << "step " << I;
  EXPECT_TRUE(T.checkpoint());
  EXPECT_EQ(T.reason(), CancelReason::StepBudget);
}

TEST(CancelToken, MemoryBudgetTripsWhenExceeded) {
  CancelToken T;
  T.setMemoryBudget(1024);
  EXPECT_FALSE(T.chargeMemory(512));
  EXPECT_FALSE(T.chargeMemory(512)); // Exactly at the budget: still live.
  EXPECT_TRUE(T.chargeMemory(1));
  EXPECT_EQ(T.reason(), CancelReason::MemoryBudget);
  EXPECT_EQ(T.memoryCharged(), 1025u);
}

TEST(CancelToken, ResetRevivesTheToken) {
  CancelToken T;
  T.setStepBudget(1);
  T.checkpoint(2);
  EXPECT_TRUE(T.expired());
  T.reset();
  EXPECT_FALSE(T.expired());
  EXPECT_EQ(T.polls(), 0u);
  EXPECT_EQ(T.stepsUsed(), 0u);
  EXPECT_FALSE(T.checkpoint(100)); // Budget cleared too.
}

TEST(CancelToken, MessagesAreStructuredAndGreppable) {
  CancelToken Deadline;
  Deadline.setDeadlineIn(std::chrono::nanoseconds(-1));
  Deadline.checkpoint();
  std::string M = cancelMessage(Deadline, "time analysis");
  EXPECT_NE(M.find("timeout: "), std::string::npos) << M;
  EXPECT_NE(M.find("time analysis cut short"), std::string::npos) << M;
  EXPECT_NE(M.find("deadline"), std::string::npos) << M;

  CancelToken Cancelled;
  Cancelled.requestCancel();
  EXPECT_NE(cancelMessage(Cancelled, "ingest").find("cancelled: "),
            std::string::npos);

  CancelToken Steps;
  Steps.setStepBudget(1);
  Steps.checkpoint(5);
  EXPECT_NE(cancelMessage(Steps, "x").find("step budget exhausted"),
            std::string::npos);
}

//===--- Backoff + retry --------------------------------------------------===//

TEST(Backoff, SequenceIsReproducibleForAFixedSeed) {
  RetryPolicy P = RetryPolicy().retries(8).jitterSeed(42);
  BackoffSchedule A(P), B(P);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(A.next().count(), B.next().count()) << "retry " << I;

  // A different seed must produce a different sequence somewhere.
  BackoffSchedule C(P), D(RetryPolicy().retries(8).jitterSeed(43));
  bool AnyDifference = false;
  for (int I = 0; I < 8; ++I)
    AnyDifference |= C.next() != D.next();
  EXPECT_TRUE(AnyDifference);
}

TEST(Backoff, GrowsGeometricallyWithinJitterBoundsAndCaps) {
  RetryPolicy P;
  P.BaseDelay = std::chrono::microseconds(1000);
  P.Multiplier = 2.0;
  P.MaxDelay = std::chrono::microseconds(100000);
  BackoffSchedule S(P);
  double NominalUs = 1000.0;
  for (int I = 0; I < 10; ++I) {
    double Cap = std::min(NominalUs, 100000.0);
    int64_t D = S.next().count();
    EXPECT_GE(D, static_cast<int64_t>(Cap * 0.5) - 1) << "retry " << I;
    EXPECT_LE(D, static_cast<int64_t>(Cap)) << "retry " << I;
    NominalUs *= 2.0;
  }
}

TEST(Retry, TransientFailuresAreAbsorbedUpToTheBudget) {
  int Calls = 0;
  std::vector<std::chrono::microseconds> Slept;
  RetryOutcome O = retryWithBackoff(
      RetryPolicy().retries(2),
      [&] {
        return ++Calls < 3 ? AttemptResult::Transient
                           : AttemptResult::Success;
      },
      nullptr, nullptr,
      [&](std::chrono::microseconds D) { Slept.push_back(D); });
  EXPECT_TRUE(O.Ok);
  EXPECT_EQ(O.Attempts, 3u);
  EXPECT_EQ(O.Retries, 2u);
  EXPECT_EQ(Slept.size(), 2u);
}

TEST(Retry, OneFailureMoreThanTheBudgetSurfaces) {
  int Calls = 0;
  RetryOutcome O = retryWithBackoff(
      RetryPolicy().retries(2), [&] { ++Calls; return AttemptResult::Transient; },
      nullptr, nullptr, [](std::chrono::microseconds) {});
  EXPECT_FALSE(O.Ok);
  EXPECT_FALSE(O.PermanentFailure);
  EXPECT_EQ(Calls, 3);
  EXPECT_EQ(O.Attempts, 3u);
}

TEST(Retry, PermanentFailuresAreNeverRetried) {
  int Calls = 0;
  RetryOutcome O = retryWithBackoff(
      RetryPolicy().retries(5), [&] { ++Calls; return AttemptResult::Permanent; },
      nullptr, nullptr, [](std::chrono::microseconds) {});
  EXPECT_FALSE(O.Ok);
  EXPECT_TRUE(O.PermanentFailure);
  EXPECT_EQ(Calls, 1);
}

TEST(Retry, AnExpiredTokenStopsTheEpisode) {
  CancelToken T;
  T.requestCancel();
  int Calls = 0;
  RetryOutcome O = retryWithBackoff(
      RetryPolicy().retries(5), [&] { ++Calls; return AttemptResult::Transient; },
      &T, nullptr, [](std::chrono::microseconds) {});
  EXPECT_FALSE(O.Ok);
  EXPECT_EQ(O.CancelledBy, CancelReason::Cancelled);
  EXPECT_EQ(Calls, 1);
}

TEST(Retry, BackoffSleepIsClampedToTheRemainingDeadline) {
  // Regression: the backoff sleep used to honor the full jittered delay
  // even when the token's wall-clock deadline was closer, so a retrying
  // load could oversleep its deadline by the whole backoff (up to
  // MaxDelay). Each sleep must be clamped to the time left.
  CancelToken T;
  T.setDeadlineIn(std::chrono::milliseconds(50));
  std::vector<std::chrono::microseconds> Slept;
  RetryOutcome O = retryWithBackoff(
      // Base delay 1s: unclamped, the first sleep would be >= 500ms even
      // at the jitter floor — an order of magnitude past the deadline.
      RetryPolicy().retries(3).baseDelay(std::chrono::seconds(1)),
      [] { return AttemptResult::Transient; }, &T, nullptr,
      [&](std::chrono::microseconds D) { Slept.push_back(D); });
  EXPECT_FALSE(O.Ok);
  ASSERT_FALSE(Slept.empty());
  for (std::chrono::microseconds D : Slept)
    EXPECT_LE(D, std::chrono::milliseconds(50))
        << "a backoff sleep outlived the deadline";
}

TEST(Retry, NoAttemptStartsAfterTheDeadlineExpires) {
  // Regression: after sleeping, the loop used to fire the next attempt
  // without re-polling the token, so an IO attempt could start after the
  // deadline had already passed during the sleep. The sleeper here
  // deliberately oversleeps the (clamped) delay past the deadline: the
  // re-poll must catch the expiry and report it, with exactly the one
  // pre-deadline attempt performed.
  CancelToken T;
  T.setDeadlineIn(std::chrono::milliseconds(30));
  int Calls = 0;
  RetryOutcome O = retryWithBackoff(
      RetryPolicy().retries(5).baseDelay(std::chrono::seconds(1)),
      [&] {
        ++Calls;
        return AttemptResult::Transient;
      },
      &T, nullptr,
      [](std::chrono::microseconds D) {
        std::this_thread::sleep_for(D + std::chrono::milliseconds(60));
      });
  EXPECT_FALSE(O.Ok);
  EXPECT_EQ(O.CancelledBy, CancelReason::Deadline);
  EXPECT_EQ(Calls, 1) << "an attempt started on an expired token";
  EXPECT_EQ(O.Attempts, 1u);
  EXPECT_EQ(O.Retries, 1u); // The episode performed (and counted) the sleep.
}

//===--- Fault-injection ranges -------------------------------------------===//

TEST(FaultRange, FiresOnEveryOpportunityInTheRange) {
  ScopedFaultInjection FI("io.fail=2-3");
  ASSERT_TRUE(FI.ok()) << FI.error();
  FaultInjection &I = FaultInjection::instance();
  EXPECT_FALSE(I.shouldFire(FaultInjection::Site::FileIo)); // 1st
  EXPECT_TRUE(I.shouldFire(FaultInjection::Site::FileIo));  // 2nd
  EXPECT_TRUE(I.shouldFire(FaultInjection::Site::FileIo));  // 3rd
  EXPECT_FALSE(I.shouldFire(FaultInjection::Site::FileIo)); // 4th
  EXPECT_EQ(I.firedCount(FaultInjection::Site::FileIo), 2u);
}

TEST(FaultRange, MalformedRangesAreRejected) {
  {
    ScopedFaultInjection FI("io.fail=3-2"); // Hi < Lo
    EXPECT_FALSE(FI.ok());
  }
  {
    ScopedFaultInjection FI("io.fail=0-2"); // Opportunities are 1-based.
    EXPECT_FALSE(FI.ok());
  }
}

TEST(FaultGrammar, ScientificNotationIsAProbability) {
  // Regression: the grammar classified a value as a probability only when
  // it contained a '.', so `io.fail=1e-1` fell into the integer parser and
  // died with a misleading "opportunity index >= 1" error.
  {
    ScopedFaultInjection FI("seed=7,io.fail=1e-1");
    ASSERT_TRUE(FI.ok()) << FI.error();
    FaultInjection &I = FaultInjection::instance();
    uint64_t Fired = 0;
    for (int K = 0; K < 1000; ++K)
      Fired += I.shouldFire(FaultInjection::Site::FileIo) ? 1 : 0;
    // p = 0.1 over 1000 seeded draws: comfortably away from 0 and 1000.
    EXPECT_GT(Fired, 0u);
    EXPECT_LT(Fired, 500u);
  }
  {
    ScopedFaultInjection FI("io.fail=1e0"); // Probability one: always fires.
    ASSERT_TRUE(FI.ok()) << FI.error();
    EXPECT_TRUE(FaultInjection::maybeFailIo());
    EXPECT_TRUE(FaultInjection::maybeFailIo());
  }
  {
    ScopedFaultInjection FI("io.fail=2.5E-2"); // Capital exponent too.
    ASSERT_TRUE(FI.ok()) << FI.error();
  }
}

TEST(FaultGrammar, BareZeroDisablesTheSite) {
  // Regression: `io.fail=0` was rejected outright, so a spec inherited
  // from the environment could not switch one site off. A bare 0 is
  // probability zero: the site is disabled, overriding earlier entries.
  {
    ScopedFaultInjection FI("io.fail=0");
    ASSERT_TRUE(FI.ok()) << FI.error();
    EXPECT_FALSE(FaultInjection::armed());
    EXPECT_FALSE(FaultInjection::maybeFailIo());
  }
  {
    // The later entry wins: the site armed by `io.fail=1` is disarmed.
    ScopedFaultInjection FI("io.fail=1,io.fail=0");
    ASSERT_TRUE(FI.ok()) << FI.error();
    EXPECT_FALSE(FaultInjection::maybeFailIo());
  }
  {
    // Other sites stay armed when one is zeroed.
    ScopedFaultInjection FI("pool.throw=1,io.fail=0");
    ASSERT_TRUE(FI.ok()) << FI.error();
    EXPECT_TRUE(FaultInjection::armed());
    EXPECT_FALSE(FaultInjection::maybeFailIo());
  }
}

TEST(FaultGrammar, IntegerErrorMessageMentionsEveryAcceptedForm) {
  ScopedFaultInjection FI("io.fail=abc");
  EXPECT_FALSE(FI.ok());
  EXPECT_NE(FI.error().find("1e-1 or 0"), std::string::npos) << FI.error();
}

//===--- Retry-wrapped profile IO -----------------------------------------===//

/// A profile captured from one run of the simple kernel.
ProfileFile captureSimpleProfile(std::unique_ptr<Program> &ProgOut) {
  ProgOut = parseWorkload(simpleKernel());
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est =
      Estimator::create(*ProgOut, CostModel::optimizing(),
                        EstimatorOptions(Diags));
  EXPECT_NE(Est, nullptr) << Diags.str();
  EXPECT_TRUE(Est->profiledRun().Ok);
  return ProfileFile::capture(Est->analysis(), Est->plan(), Est->runtime(),
                              &Est->loopStats(), 1);
}

std::vector<uint8_t> slurp(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr);
  if (!F)
    return Bytes;
  std::fseek(F, 0, SEEK_END);
  Bytes.resize(static_cast<size_t>(std::ftell(F)));
  std::fseek(F, 0, SEEK_SET);
  EXPECT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
  return Bytes;
}

TEST(ProfileIoRetry, TwoTransientFailuresAbsorbedBitIdentically) {
  std::unique_ptr<Program> Prog;
  ProfileFile PF = captureSimpleProfile(Prog);
  const std::string Path = "resilience_retry_profile.ptpf";
  RetryPolicy Retry =
      RetryPolicy().retries(2).baseDelay(std::chrono::microseconds(1));

  // Clean reference image.
  ASSERT_TRUE(PF.saveToFile(Path, nullptr));
  std::vector<uint8_t> Reference = slurp(Path);
  ASSERT_FALSE(Reference.empty());

  // Attempts 1 and 2 fail, attempt 3 succeeds: fully absorbed, and the
  // bytes on disk are identical to the clean write.
  {
    ScopedFaultInjection FI("io.fail=1-2");
    ASSERT_TRUE(FI.ok()) << FI.error();
    DiagnosticEngine Diags;
    EXPECT_TRUE(PF.saveToFile(Path, &Diags, Retry));
    EXPECT_NE(Diags.str().find("succeeded after 2 retried transient"),
              std::string::npos)
        << Diags.str();
  }
  EXPECT_EQ(slurp(Path), Reference);

  // Loading through two transient failures works the same way.
  {
    ScopedFaultInjection FI("io.fail=1-2");
    ASSERT_TRUE(FI.ok()) << FI.error();
    DiagnosticEngine Diags;
    std::optional<ProfileFile> Loaded =
        ProfileFile::loadFromFile(Path, &Diags, Retry);
    ASSERT_TRUE(Loaded.has_value()) << Diags.str();
    EXPECT_EQ(Loaded->serialize(), PF.serialize());
  }
  std::remove(Path.c_str());
}

TEST(ProfileIoRetry, OneFailureBeyondTheBudgetSurfacesADiagnostic) {
  std::unique_ptr<Program> Prog;
  ProfileFile PF = captureSimpleProfile(Prog);
  const std::string Path = "resilience_retry_fail.ptpf";
  RetryPolicy Retry =
      RetryPolicy().retries(2).baseDelay(std::chrono::microseconds(1));

  ScopedFaultInjection FI("io.fail=1-3"); // All three attempts fail.
  ASSERT_TRUE(FI.ok()) << FI.error();
  DiagnosticEngine Diags;
  EXPECT_FALSE(PF.saveToFile(Path, &Diags, Retry));
  EXPECT_NE(Diags.str().find("persisted across 3 attempts"),
            std::string::npos)
      << Diags.str();
  std::remove(Path.c_str());
}

//===--- Token-aware passes -----------------------------------------------===//

TEST(Resilience, PreCancelledAnalysisSkipsEveryFunction) {
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(7, 2);
  CancelToken Token;
  Token.requestCancel();
  DiagnosticEngine Diags;
  AnalysisOptions Opts;
  Opts.Cancel = &Token;
  std::unique_ptr<ProgramAnalysis> PA =
      ProgramAnalysis::compute(*Prog, Diags, Opts);
  ASSERT_NE(PA, nullptr);
  EXPECT_TRUE(PA->cutShort());
  EXPECT_FALSE(PA->allOk());
  EXPECT_EQ(PA->skipped().size(), Prog->functions().size());
  EXPECT_NE(Diags.str().find("cancelled: program analysis cut short"),
            std::string::npos)
      << Diags.str();

  // The estimator refuses to build on a cut-short analysis under every
  // policy: without FCDGs there are no static frequencies to degrade to.
  DiagnosticEngine EDiags;
  EXPECT_EQ(Estimator::create(*Prog, CostModel::optimizing(),
                              EstimatorOptions(EDiags).cancel(Token)),
            nullptr);
  EXPECT_NE(EDiags.str().find("cut short"), std::string::npos);
}

TEST(Resilience, RecoveryFixpointHonorsAnExpiredToken) {
  std::unique_ptr<Program> Prog = parseWorkload(simpleKernel());
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = Estimator::create(
      *Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr);
  ASSERT_TRUE(Est->profiledRun().Ok);
  const Function &F = *Prog->entry();
  ASSERT_TRUE(Est->runtime().recover(F).Ok);
  CancelToken Token;
  Token.requestCancel();
  EXPECT_FALSE(Est->runtime().recover(F, &Token).Ok);
}

//===--- Session deadline policies ----------------------------------------===//

struct SessionPair {
  std::unique_ptr<Program> Prog;
  DiagnosticEngine RefDiags;
  std::unique_ptr<EstimationSession> Ref;
  EstimateResult RefRes;
  DiagnosticEngine Diags;
  CancelToken Token;
  std::unique_ptr<EstimationSession> S;
};

/// An unbounded reference session plus a token-carrying session over the
/// same deterministic workload, both after one profiled run. The token is
/// reset after creation so the test arms exactly the budget it wants.
std::unique_ptr<SessionPair> makeSessions(DeadlinePolicy Policy,
                                          ObsRegistry *Obs = nullptr) {
  auto P = std::make_unique<SessionPair>();
  P->Prog = makeManyFunctionProgram(15, 2);
  CostModel CM = CostModel::optimizing();
  P->Ref = EstimationSession::create(*P->Prog, CM,
                                     EstimatorOptions(P->RefDiags));
  EXPECT_NE(P->Ref, nullptr);
  EXPECT_TRUE(P->Ref->profiledRun().Ok);
  P->RefRes = P->Ref->estimateEntry();
  EXPECT_TRUE(P->RefRes.Ok) << P->RefRes.Error;

  EstimatorOptions EOpts =
      EstimatorOptions(P->Diags).cancel(P->Token).onDeadline(Policy);
  if (Obs)
    EOpts.observability(*Obs);
  P->S = EstimationSession::create(*P->Prog, CM, EOpts);
  EXPECT_NE(P->S, nullptr);
  EXPECT_TRUE(P->S->profiledRun().Ok);
  // Analysis consumed unbudgeted steps during create; start clean so the
  // budgets below are exact.
  P->Token.reset();
  return P;
}

void expectFunctionBitIdentical(const Function &F, const TimeAnalysis &A,
                                const TimeAnalysis &B) {
  const std::vector<NodeEstimates> &EA = A.estimatesOf(F);
  const std::vector<NodeEstimates> &EB = B.estimatesOf(F);
  ASSERT_EQ(EA.size(), EB.size()) << F.name();
  EXPECT_EQ(
      std::memcmp(EA.data(), EB.data(), EA.size() * sizeof(NodeEstimates)),
      0)
      << "estimates of " << F.name() << " differ bitwise";
}

TEST(DeadlinePolicyTest, DegradeCompletesTheQueryAndTagsUnfinished) {
  ObsRegistry Obs;
  std::unique_ptr<SessionPair> P =
      makeSessions(DeadlinePolicy::Degrade, &Obs);
  // 15 steps cover the per-function input refresh; the budget trips a few
  // components into the time analysis, leaving the tail unfinished.
  P->Token.setStepBudget(20);
  EstimateResult Res = P->S->estimateEntry();
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_FALSE(P->S->degraded().empty());
  // Unfinished sets are closed under "callers of", so the entry is always
  // degraded when anything is — and its result is tagged.
  EXPECT_TRUE(P->S->isDegraded(*P->Prog->entry()));
  EXPECT_TRUE(Res.Degraded);
  EXPECT_FALSE(Res.DegradeReason.empty());

  // Everything the budgeted run completed is bit-identical to the
  // unbounded reference.
  unsigned Exact = 0;
  for (const auto &F : P->Prog->functions()) {
    if (P->S->isDegraded(*F))
      continue;
    ++Exact;
    expectFunctionBitIdentical(*F, *Res.Analysis, *P->RefRes.Analysis);
  }
  EXPECT_GT(Exact, 0u) << "budget tripped before any function completed";

  EXPECT_GT(Obs.counterValue("resilience.cancel_polls"), 0u);
  EXPECT_GT(Obs.counterValue("resilience.degraded_functions"), 0u);
  EXPECT_GT(Obs.counterValue("resilience.deadline_hits"), 0u);

  // Degradation is per-query: with the token reset, the next estimate
  // recomputes everything exactly.
  P->Token.reset();
  EstimateResult Clean = P->S->estimateEntry();
  ASSERT_TRUE(Clean.Ok) << Clean.Error;
  EXPECT_TRUE(P->S->degraded().empty());
  EXPECT_FALSE(Clean.Degraded);
  for (const auto &F : P->Prog->functions())
    expectFunctionBitIdentical(*F, *Clean.Analysis, *P->RefRes.Analysis);
}

TEST(DeadlinePolicyTest, DegradeCoversACutDuringInputRefresh) {
  std::unique_ptr<SessionPair> P = makeSessions(DeadlinePolicy::Degrade);
  // Fewer steps than functions: the cut lands inside refreshInputs and
  // every function whose recovery never ran degrades.
  P->Token.setStepBudget(5);
  EstimateResult Res = P->S->estimateEntry();
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_FALSE(P->S->degraded().empty());
  for (const auto &F : P->Prog->functions())
    if (!P->S->isDegraded(*F))
      expectFunctionBitIdentical(*F, *Res.Analysis, *P->RefRes.Analysis);

  // The skipped recoveries really rerun next query: exact results again.
  P->Token.reset();
  EstimateResult Clean = P->S->estimateEntry();
  ASSERT_TRUE(Clean.Ok) << Clean.Error;
  for (const auto &F : P->Prog->functions())
    expectFunctionBitIdentical(*F, *Clean.Analysis, *P->RefRes.Analysis);
}

TEST(DeadlinePolicyTest, FailIsAtomicAndStructured) {
  std::unique_ptr<SessionPair> P = makeSessions(DeadlinePolicy::Fail);
  P->Token.setStepBudget(20);
  EstimateResult Res = P->S->estimateEntry();
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("timeout: "), std::string::npos) << Res.Error;
  EXPECT_NE(Res.Error.find("cut short"), std::string::npos) << Res.Error;
  EXPECT_TRUE(P->S->degraded().empty());

  // The failed query left no partial state behind: a fresh token yields
  // the exact unbounded answer.
  P->Token.reset();
  EstimateResult Clean = P->S->estimateEntry();
  ASSERT_TRUE(Clean.Ok) << Clean.Error;
  for (const auto &F : P->Prog->functions())
    expectFunctionBitIdentical(*F, *Clean.Analysis, *P->RefRes.Analysis);
}

TEST(DeadlinePolicyTest, CancelledBatchesFailWithTheCancelPrefix) {
  std::unique_ptr<SessionPair> P = makeSessions(DeadlinePolicy::Fail);
  P->Token.requestCancel();
  EstimateResult Res = P->S->estimateEntry();
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("cancelled: "), std::string::npos) << Res.Error;
}

TEST(DeadlinePolicyTest, IngestAbortsAtomicallyOnExpiry) {
  std::unique_ptr<SessionPair> P = makeSessions(DeadlinePolicy::Degrade);
  ProfileFile PF = P->Ref->captureProfile();
  P->Token.setStepBudget(3); // Trips partway through the sections.
  ProfileIngestReport Report = P->S->ingestProfile(PF);
  EXPECT_FALSE(Report.Ok);
  EXPECT_NE(Report.Error.find("profile ingest cut short"),
            std::string::npos)
      << Report.Error;
  EXPECT_EQ(Report.Accepted, 0u);

  // Nothing half-applied: the full ingest succeeds after a reset.
  P->Token.reset();
  ProfileIngestReport Clean = P->S->ingestProfile(PF);
  EXPECT_TRUE(Clean.Ok) << Clean.Error;
  EXPECT_GT(Clean.Accepted, 0u);
}

TEST(DeadlinePolicyTest, MemoryBudgetDegradesLikeADeadline) {
  std::unique_ptr<SessionPair> P = makeSessions(DeadlinePolicy::Degrade);
  // Enough steps for the input refresh; a tiny memory budget trips once
  // the time analysis starts charging its estimate tables.
  P->Token.setMemoryBudget(256);
  EstimateResult Res = P->S->estimateEntry();
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_FALSE(P->S->degraded().empty());
  EXPECT_NE(Res.DegradeReason.find("memory budget"), std::string::npos)
      << Res.DegradeReason;
}

} // namespace
