//===--- tests/obs_test.cpp - Observability layer tests -------------------===//
//
// The tracing/metrics subsystem: registry semantics (spans, counters,
// thread safety), the null-registry fast path, Chrome trace_event JSON
// well-formedness (checked with a small recursive-descent JSON parser, not
// substring poking), the stats tables, and end-to-end span/counter
// coverage when a registry rides through an Estimator and an
// EstimationSession.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "obs/Observability.h"
#include "session/EstimationSession.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>

using namespace ptran;
using namespace ptran::testing;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON validator: accepts exactly the RFC 8259 grammar (no
// extensions), so a malformed trace — trailing comma, unescaped quote,
// bare NaN — fails the test instead of loading half-way in a viewer.
//===----------------------------------------------------------------------===//

class JsonValidator {
public:
  explicit JsonValidator(std::string_view Text) : Text(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Raw control character: must be escaped.
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 1; I <= 4; ++I)
            if (Pos + I >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return false;
          Pos += 4;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!digits())
      return false;
    if (peek() == '.') {
      ++Pos;
      if (!digits())
        return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!digits())
        return false;
    }
    return Pos > Start;
  }

  bool digits() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Pos > Start;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

std::set<std::string> spanNames(const ObsRegistry &Reg) {
  std::set<std::string> Names;
  for (const ObsRegistry::SpanRecord &S : Reg.spans())
    Names.insert(S.Name);
  return Names;
}

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, CountersAccumulate) {
  ObsRegistry Reg;
  EXPECT_TRUE(Reg.empty());
  EXPECT_EQ(Reg.counterValue("x"), 0u);
  Reg.addCounter("x");
  Reg.addCounter("x", 4);
  Reg.addCounter("y", 2);
  EXPECT_EQ(Reg.counterValue("x"), 5u);
  EXPECT_EQ(Reg.counterValue("y"), 2u);
  EXPECT_FALSE(Reg.empty());
}

TEST(ObsRegistry, SpansRecordNameDetailAndOrder) {
  ObsRegistry Reg;
  {
    TimingSpan Outer(&Reg, "outer", "whole");
    TimingSpan Inner(&Reg, "inner");
  }
  std::vector<ObsRegistry::SpanRecord> Spans = Reg.spans();
  ASSERT_EQ(Spans.size(), 2u);
  // Inner ends first (destruction order), so it is recorded first.
  EXPECT_EQ(Spans[0].Name, "inner");
  EXPECT_EQ(Spans[1].Name, "outer");
  EXPECT_EQ(Spans[1].Detail, "whole");
  // The outer span covers the inner one.
  EXPECT_LE(Spans[1].StartNs, Spans[0].StartNs);
  EXPECT_GE(Spans[1].StartNs + Spans[1].DurNs,
            Spans[0].StartNs + Spans[0].DurNs);
}

TEST(ObsRegistry, NullRegistrySpanIsANoOp) {
  // The disabled fast path: must not crash, must not record anywhere.
  TimingSpan Span(nullptr, "nothing", "at all");
}

TEST(ObsRegistry, ConcurrentProducersAreSerialized) {
  // Pool workers and the orchestrating thread all write through one
  // registry; under -DPTRAN_SANITIZE=thread this doubles as the TSan
  // proof for the span/counter paths.
  ObsRegistry Reg;
  ThreadPool Pool(4);
  Pool.attachObservability(&Reg);
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 64; ++I)
    Futures.push_back(Pool.submit([&Reg] {
      TimingSpan Span(&Reg, "work");
      Reg.addCounter("work.count");
    }));
  waitAll(Futures);
  EXPECT_EQ(Reg.counterValue("work.count"), 64u);
  EXPECT_EQ(Reg.spans().size(), 64u);
  EXPECT_EQ(Reg.counterValue("threadpool.tasks_executed"), 64u);
  EXPECT_GT(Reg.counterValue("threadpool.busy_ns"), 0u);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(ObsTrace, ChromeTraceIsWellFormedJson) {
  ObsRegistry Reg;
  {
    // Names and details with every character class the escaper must
    // handle.
    TimingSpan Span(&Reg, "weird \"name\"", "back\\slash\nnewline\ttab");
  }
  Reg.addCounter("plain.counter", 7);
  std::string Json = Reg.chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ObsTrace, EmptyRegistrySerializes) {
  ObsRegistry Reg;
  EXPECT_TRUE(JsonValidator(Reg.chromeTraceJson()).valid());
  // And the stats table renders (empty tables, no crash).
  EXPECT_FALSE(Reg.statsTable().empty());
}

TEST(ObsTrace, WriteFailureIsReported) {
  ObsRegistry Reg;
  std::string Error;
  EXPECT_FALSE(
      Reg.writeChromeTrace("/nonexistent-dir/trace.json", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ObsStats, TableAggregatesPerSpanName) {
  ObsRegistry Reg;
  for (int I = 0; I < 3; ++I)
    TimingSpan Span(&Reg, "pass.a");
  { TimingSpan Span(&Reg, "pass.b"); }
  Reg.addCounter("some.counter", 41);
  std::string Table = Reg.statsTable();
  EXPECT_NE(Table.find("pass.a"), std::string::npos) << Table;
  EXPECT_NE(Table.find("pass.b"), std::string::npos);
  EXPECT_NE(Table.find("some.counter"), std::string::npos);
  EXPECT_NE(Table.find("41"), std::string::npos);
  // Aggregated: one row per name, so "pass.a" appears exactly once.
  size_t First = Table.find("pass.a");
  EXPECT_EQ(Table.find("pass.a", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End to end
//===----------------------------------------------------------------------===//

TEST(ObsEndToEnd, EstimatorRecordsEveryPass) {
  std::unique_ptr<Program> P = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  ObsRegistry Reg;
  auto Est = Estimator::create(
      *P, CostModel::optimizing(),
      EstimatorOptions(Diags).observability(Reg));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  TimeAnalysis TA = Est->analyze();
  (void)TA;

  std::set<std::string> Names = spanNames(Reg);
  for (const char *Expected :
       {"analysis.program", "analysis.cfg", "analysis.intervals",
        "analysis.ecfg", "analysis.fcdg", "plan.counters", "profiled-run",
        "timeanalysis.run", "timeanalysis.wave", "timeanalysis.scc"})
    EXPECT_TRUE(Names.count(Expected)) << "missing span " << Expected;
  EXPECT_GT(Reg.counterValue("recovery.calls"), 0u);
  EXPECT_GT(Reg.counterValue("recovery.fixpoint_iterations"), 0u);
  EXPECT_GT(Reg.counterValue("timeanalysis.evaluations"), 0u);
  EXPECT_TRUE(JsonValidator(Reg.chromeTraceJson()).valid());
}

TEST(ObsEndToEnd, DisabledObservabilityRecordsNothing) {
  // The same pipeline without a registry must leave a fresh registry
  // untouched — i.e. nothing secretly writes to a global.
  std::unique_ptr<Program> P = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  ObsRegistry Untouched;
  auto Est =
      Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  (void)Est->analyze();
  EXPECT_TRUE(Untouched.empty());
}

TEST(ObsEndToEnd, SessionRoutesCacheCountersThroughRegistry) {
  std::unique_ptr<Program> P = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  ObsRegistry Reg;
  auto Session = EstimationSession::create(
      *P, CostModel::optimizing(),
      EstimatorOptions(Diags).jobs(2).observability(Reg));
  ASSERT_NE(Session, nullptr) << Diags.str();

  ASSERT_TRUE(Session->profiledRun().Ok);
  ASSERT_TRUE(Session->estimateEntry().Ok);
  // Same inputs again: pure cache hit.
  ASSERT_TRUE(Session->estimateEntry().Ok);
  // New run dirties the inputs; the wave schedule reruns incrementally.
  ASSERT_TRUE(Session->profiledRun().Ok);
  ASSERT_TRUE(Session->estimateEntry().Ok);

  EXPECT_EQ(Reg.counterValue("session.runs"), 2u);
  EXPECT_EQ(Reg.counterValue("session.queries"), 3u);
  EXPECT_EQ(Reg.counterValue("session.cache_hits"), 1u);
  EXPECT_GE(Reg.counterValue("session.cache_misses"), 1u);
  EXPECT_GT(Reg.counterValue("session.dirty_functions"), 0u);
  EXPECT_EQ(Reg.counterValue("session.evaluations"),
            Session->totalEvaluations());
  // The session's long-lived pool reports through the same registry.
  EXPECT_GT(Reg.counterValue("threadpool.tasks_executed"), 0u);
  EXPECT_TRUE(JsonValidator(Reg.chromeTraceJson()).valid());
}

TEST(ObsEndToEnd, TraceRoundTripsThroughAFile) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  ObsRegistry Reg;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(),
                               EstimatorOptions(Diags).observability(Reg));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  (void)Est->analyze();

  std::string Path = "ptran_obs_trace.json"; // test working directory
  std::string Error;
  ASSERT_TRUE(Reg.writeChromeTrace(Path, Error)) << Error;
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string OnDisk((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
  // The file gets a trailing newline for tool friendliness.
  EXPECT_EQ(OnDisk, Reg.chromeTraceJson() + "\n");
  EXPECT_TRUE(JsonValidator(OnDisk).valid());
  std::remove(Path.c_str());
}

} // namespace
