//===--- tests/parallel_test.cpp - Parallel pipeline & robustness ---------===//
//
// Covers the parallel analysis drivers (per-function fan-out and the
// SCC-wave interprocedural pass): job-count determinism on the Figure 1/3
// programs and the many-function synthetic workload, plus regression tests
// for the robustness sweep — oversized counter vectors, programs with one
// irreducible function, and calls to unresolved procedures.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cost/Estimator.h"
#include "freq/Frequencies.h"
#include "parser/Parser.h"
#include "profile/CounterPlan.h"
#include "profile/Recovery.h"
#include "support/Cancellation.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

using namespace ptran;
using namespace ptran::testing;

namespace {

// Synthetic but structurally valid frequencies, identical for every run.
std::map<const Function *, Frequencies>
syntheticFrequencies(const Program &Prog, const ProgramAnalysis &PA) {
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog.functions()) {
    const FunctionAnalysis &FA = PA.of(*F);
    FrequencyTotals Totals;
    Totals.Ok = true;
    for (const ControlCondition &C : FA.cd().conditions()) {
      double V = 1.0;
      if (C.Label == CfgLabel::Z)
        V = 0.0;
      else if (FA.ecfg().headerOf(C.Node) != InvalidNode)
        V = 3.0;
      Totals.Cond[C] = V;
    }
    Totals.Cond[{FA.ecfg().start(), CfgLabel::U}] = 1.0;
    Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);
    Freqs[F.get()] = computeFrequencies(FA, Totals);
  }
  return Freqs;
}

// Every function's TIME/VAR under the given job count.
std::vector<double> estimatesAtJobs(const Program &Prog, unsigned Jobs,
                                    const TimeAnalysisOptions &Base) {
  DiagnosticEngine Diags;
  AnalysisOptions AOpts;
  AOpts.Exec.Jobs = Jobs;
  auto PA = ProgramAnalysis::compute(Prog, Diags, AOpts);
  EXPECT_TRUE(PA && PA->allOk()) << Diags.str();
  std::map<const Function *, Frequencies> Freqs =
      syntheticFrequencies(Prog, *PA);
  TimeAnalysisOptions Opts = Base;
  Opts.Exec.Jobs = Jobs;
  TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CostModel::optimizing(),
                                      Opts);
  std::vector<double> Out;
  for (const auto &F : Prog.functions()) {
    Out.push_back(TA.functionTime(*F));
    Out.push_back(TA.functionVariance(*F));
  }
  return Out;
}

} // namespace

TEST(ThreadPool, RunsTasksAndPropagatesResults) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPool, InlineModeRunsOnSubmittingThread) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 0u);
  std::thread::id Submitter = std::this_thread::get_id();
  std::future<std::thread::id> F =
      Pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(F.get(), Submitter);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool Pool(2);
  std::future<void> F = Pool.submit(
      [] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futures;
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Futures.push_back(Pool.submit([&Ran] { ++Ran; }));
  }
  // No broken_promise: every submitted task ran before join.
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPool, TokenAwareSubmitSkipsAfterCancel) {
  ThreadPool Pool(2);
  CancelToken Token;
  std::atomic<int> Ran{0};

  // A live token runs the body normally.
  Pool.submit(&Token, [&Ran] { ++Ran; }).get();
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.skippedCount(), 0u);

  // After cancellation every not-yet-started task of the group is skipped:
  // bodies never run, but the futures still complete (no hang, no
  // broken_promise on waitAll-style barriers).
  Token.requestCancel();
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 32; ++I)
    Futures.push_back(Pool.submit(&Token, [&Ran] { ++Ran; }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.skippedCount(), 32u);
}

TEST(ThreadPool, DestructionDrainsACancelledGroupCleanly) {
  // Regression: destroying the pool while a cancelled group is still
  // queued must complete every future without running the bodies and
  // without hanging in join.
  CancelToken Token;
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futures;
  uint64_t Skipped = 0;
  {
    ThreadPool Pool(2);
    // Park the workers so the group is still queued when we cancel.
    for (int I = 0; I < 2; ++I)
      Futures.push_back(Pool.submit(&Token, [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }));
    for (int I = 0; I < 64; ++I)
      Futures.push_back(Pool.submit(&Token, [&Ran] { ++Ran; }));
    Token.requestCancel();
    // Pool destruction drains the queue here.
  }
  for (std::future<void> &F : Futures)
    F.get(); // Throws broken_promise if any task was dropped.
  Skipped = 64 - static_cast<uint64_t>(Ran.load());
  EXPECT_LE(Ran.load(), 64);
  EXPECT_GT(Skipped, 0u) << "cancellation raced ahead of every dequeue";
}

TEST(ParallelDeterminism, Figure1SameNumbersAtAnyJobCount) {
  Figure1Program Fix = makeFigure1();
  std::vector<double> Serial =
      estimatesAtJobs(*Fix.Prog, 1, figure3CostOptions());
  for (unsigned Jobs : {2u, 8u}) {
    std::vector<double> Parallel =
        estimatesAtJobs(*Fix.Prog, Jobs, figure3CostOptions());
    ASSERT_EQ(Serial.size(), Parallel.size());
    for (size_t I = 0; I < Serial.size(); ++I)
      EXPECT_EQ(Serial[I], Parallel[I]) << "jobs=" << Jobs << " slot " << I;
  }
}

TEST(ParallelDeterminism, ManyFunctionWorkloadBitIdenticalAcrossJobs) {
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(63, 2);
  TimeAnalysisOptions Base;
  std::vector<double> Serial = estimatesAtJobs(*Prog, 1, Base);
  for (unsigned Jobs : {2u, 4u, 8u}) {
    std::vector<double> Parallel = estimatesAtJobs(*Prog, Jobs, Base);
    ASSERT_EQ(Serial.size(), Parallel.size());
    for (size_t I = 0; I < Serial.size(); ++I)
      EXPECT_EQ(Serial[I], Parallel[I]) << "jobs=" << Jobs << " slot " << I;
  }
}

TEST(ParallelDeterminism, EstimatorEndToEndMatchesSerial) {
  // Full pipeline on the Figure 1 program: profiled run + analysis with 8
  // workers must reproduce the serial estimate exactly.
  auto RunAt = [](unsigned Jobs) {
    Figure1Program Fix = makeFigure1();
    DiagnosticEngine Diags;
    auto Est = Estimator::create(
        *Fix.Prog, CostModel::optimizing(),
        EstimatorOptions(Diags).mode(ProfileMode::Smart).jobs(Jobs));
    EXPECT_NE(Est, nullptr) << Diags.str();
    EXPECT_TRUE(Est->profiledRun().Ok);
    TimeAnalysis TA = Est->analyze(figure3CostOptions());
    return std::pair(TA.programTime(), TA.programStdDev());
  };
  auto [SerialTime, SerialDev] = RunAt(1);
  auto [ParallelTime, ParallelDev] = RunAt(8);
  EXPECT_EQ(SerialTime, ParallelTime);
  EXPECT_EQ(SerialDev, ParallelDev);
}

TEST(ParallelDeterminism, RecursiveProgramsStableAcrossJobs) {
  // Mutual recursion: the SCC fixpoint must stay inside one task and keep
  // its serial iteration order at every job count.
  const char *Src = R"(
program main
  integer n
  n = 3
  call ping(n)
end

subroutine ping(n)
  integer n
  if (n .le. 0) goto 10
  n = n - 1
  call pong(n)
10 continue
end

subroutine pong(n)
  integer n
  call ping(n)
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseProgram(Src, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();
  TimeAnalysisOptions Base;
  std::vector<double> Serial = estimatesAtJobs(*Prog, 1, Base);
  std::vector<double> Parallel = estimatesAtJobs(*Prog, 8, Base);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I)
    EXPECT_EQ(Serial[I], Parallel[I]);
}

TEST(RecoveryRobustness, MismatchedCounterVectorFailsCleanly) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Fix.Prog, Diags);
  ASSERT_TRUE(PA && PA->allOk()) << Diags.str();
  ProgramPlan Plan = ProgramPlan::build(*PA, ProfileMode::Smart);
  const FunctionPlan &FP = Plan.of(*Fix.Main);
  ASSERT_GT(FP.numCounters(), 0u);

  // Oversized and undersized vectors: Ok=false plus a diagnostic, no
  // out-of-bounds read (previously only an assert guarded this).
  for (size_t Size : {size_t(0), size_t(FP.numCounters() + 7)}) {
    DiagnosticEngine RecDiags;
    std::vector<double> Bad(Size, 1.0);
    FrequencyTotals Totals =
        recoverTotals(PA->of(*Fix.Main), FP, Bad, &RecDiags);
    EXPECT_FALSE(Totals.Ok) << "size " << Size;
    EXPECT_TRUE(RecDiags.hasErrors()) << "size " << Size;
    EXPECT_NE(RecDiags.str().find("counter vector"), std::string::npos)
        << RecDiags.str();
  }

  // The matching size still recovers (with the optional sink attached).
  DiagnosticEngine RecDiags;
  std::vector<double> Zeros(FP.numCounters(), 0.0);
  FrequencyTotals Totals =
      recoverTotals(PA->of(*Fix.Main), FP, Zeros, &RecDiags);
  EXPECT_TRUE(Totals.Ok) << RecDiags.str();
  EXPECT_FALSE(RecDiags.hasErrors());
}

TEST(PartialAnalysis, OneBadFunctionDoesNotSinkTheProgram) {
  // good() is a plain reducible function; bad() is the textbook
  // irreducible GOTO weave.
  const char *Src = R"(
program main
  integer a
  a = 0
  call good(a)
end

subroutine good(a)
  integer a
  a = a + 1
end

subroutine bad(a)
  integer a
  if (a .gt. 0) goto 20
10 a = a + 1
  goto 30
20 a = a + 2
30 if (a .lt. 5) goto 20
  if (a .lt. 9) goto 10
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseProgram(Src, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();

  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr);
  EXPECT_FALSE(PA->allOk());
  EXPECT_NE(Diags.str().find("irreducible"), std::string::npos)
      << Diags.str();

  const Function *Main = Prog->findFunction("main");
  const Function *Good = Prog->findFunction("good");
  const Function *Bad = Prog->findFunction("bad");
  ASSERT_TRUE(Main && Good && Bad);

  // Successfully analyzed functions stay usable ...
  EXPECT_NE(PA->tryOf(*Main), nullptr);
  EXPECT_NE(PA->tryOf(*Good), nullptr);
  EXPECT_FALSE(PA->failed(*Main));
  // ... and the failed one is recorded as failed, distinct from unknown.
  EXPECT_EQ(PA->tryOf(*Bad), nullptr);
  EXPECT_TRUE(PA->failed(*Bad));
  ASSERT_EQ(PA->failures().size(), 1u);
  EXPECT_EQ(PA->failures().front(), Bad);

  // A function that was never part of the program is "unknown", not
  // "failed".
  Program Other;
  DiagnosticEngine D2;
  FunctionBuilder B(Other, "stranger", D2);
  B.ret();
  Function *Stranger = B.finish();
  ASSERT_NE(Stranger, nullptr);
  EXPECT_FALSE(PA->failed(*Stranger));
  EXPECT_EQ(PA->tryOf(*Stranger), nullptr);

  // The whole-program estimator refuses partial coverage.
  DiagnosticEngine D3;
  auto Est = Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(D3));
  EXPECT_EQ(Est, nullptr);
}

TEST(UnresolvedCallee, DiagnosedOncePerCalleeAndTreatedAsZero) {
  // Builder-made program calling two procedures that do not exist (the
  // parser would reject this, but programmatic construction and future
  // separate-compilation flows can produce it).
  Program Prog;
  DiagnosticEngine Diags;
  {
    FunctionBuilder B(Prog, "main", Diags);
    VarId I = B.intVar("i");
    B.doLoop(I, B.lit(1), B.lit(4));
    B.callSub("extern1", {});
    B.callSub("extern1", {});
    B.callSub("extern2", {});
    B.endDo();
    ASSERT_NE(B.finish(), nullptr) << Diags.str();
  }

  auto PA = ProgramAnalysis::compute(Prog, Diags);
  ASSERT_TRUE(PA && PA->allOk()) << Diags.str();
  std::map<const Function *, Frequencies> Freqs =
      syntheticFrequencies(Prog, *PA);

  DiagnosticEngine TADiags;
  TimeAnalysisOptions Opts;
  Opts.Diags = &TADiags;
  TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CostModel::optimizing(),
                                      Opts);
  (void)TA;

  std::string Rendered = TADiags.str();
  // One warning per distinct callee, even though extern1 is called twice
  // per iteration and the loop body is evaluated repeatedly.
  size_t First = Rendered.find("extern1");
  ASSERT_NE(First, std::string::npos) << Rendered;
  EXPECT_EQ(Rendered.find("extern1", First + 1), std::string::npos)
      << Rendered;
  EXPECT_NE(Rendered.find("extern2"), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find("zero callee time"), std::string::npos)
      << Rendered;

  // Resolved calls stay silent.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine D2;
  auto PA2 = ProgramAnalysis::compute(*Fix.Prog, D2);
  ASSERT_TRUE(PA2 && PA2->allOk()) << D2.str();
  DiagnosticEngine TAD2;
  TimeAnalysisOptions Opts2 = figure3CostOptions();
  Opts2.Diags = &TAD2;
  TimeAnalysis::run(*PA2, syntheticFrequencies(*Fix.Prog, *PA2),
                    CostModel::optimizing(), Opts2);
  EXPECT_TRUE(TAD2.diagnostics().empty()) << TAD2.str();
}
