//===--- tests/consistency_test.cpp - Profile identity checking -----------===//
//
// The Section 3 identities as a validation tool: exact profiles pass on
// every workload and random program; targeted corruptions are detected.
// Also the opt-1 motivating example from the paper: identically control
// dependent statements share one counter.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "parser/Parser.h"
#include "ir/Printer.h"
#include "profile/ConsistencyCheck.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(ConsistencyCheck, ExactProfilesAreConsistentOnWorkloads) {
  for (const Workload *W : table1Workloads()) {
    std::unique_ptr<Program> P = parseWorkload(*W);
    DiagnosticEngine Diags;
    auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
    ASSERT_NE(Est, nullptr) << Diags.str();
    ASSERT_TRUE(Est->profiledRun(W->MaxSteps).Ok);
    for (const auto &F : P->functions()) {
      std::vector<std::string> Findings = checkFrequencyConsistency(
          Est->analysis().of(*F), Est->totalsFor(*F));
      EXPECT_TRUE(Findings.empty())
          << W->Name << "/" << F->name() << ":\n"
          << join(Findings, "\n");
    }
  }
}

class RandomProgramConsistency : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomProgramConsistency, RecoveredTotalsPass) {
  std::unique_ptr<Program> P =
      makeRandomProgram(GetParam(), RandomProgramConfig());
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  for (const auto &F : P->functions()) {
    std::vector<std::string> Findings = checkFrequencyConsistency(
        Est->analysis().of(*F), Est->totalsFor(*F));
    EXPECT_TRUE(Findings.empty()) << join(Findings, "\n");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramConsistency,
                         ::testing::Range<uint64_t>(500, 515));

TEST(ConsistencyCheck, DetectsCorruptedTotals) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  FrequencyTotals Good = Est->totalsFor(*Fix.Main);
  ASSERT_TRUE(checkFrequencyConsistency(FA, Good).empty());

  // Corrupt a branch total: the sum rule at the node must fire.
  {
    FrequencyTotals Bad = Good;
    NodeId B = FA.cfg().nodeForStmt(Fix.B);
    Bad.Cond[{B, CfgLabel::F}] += 3.0;
    Bad.Node = nodeTotalsFromConds(FA, Bad.Cond);
    std::vector<std::string> Findings =
        checkFrequencyConsistency(FA, Bad);
    EXPECT_FALSE(Findings.empty());
  }

  // Nonzero pseudo edge.
  {
    FrequencyTotals Bad = Good;
    for (const ControlCondition &C : FA.cd().conditions())
      if (C.Label == CfgLabel::Z) {
        Bad.Cond[C] = 5.0;
        break;
      }
    std::vector<std::string> Findings =
        checkFrequencyConsistency(FA, Bad);
    EXPECT_FALSE(Findings.empty());
  }

  // Loop header executing fewer times than its entries.
  {
    FrequencyTotals Bad = Good;
    NodeId Ph = FA.ecfg().preheaderOf(FA.intervals().headers().at(0));
    Bad.Cond[{Ph, CfgLabel::U}] = 0.25;
    std::vector<std::string> Findings =
        checkFrequencyConsistency(FA, Bad);
    EXPECT_FALSE(Findings.empty());
  }

  // Negative total.
  {
    FrequencyTotals Bad = Good;
    NodeId A = FA.cfg().nodeForStmt(Fix.A);
    Bad.Cond[{A, CfgLabel::T}] = -1.0;
    std::vector<std::string> Findings =
        checkFrequencyConsistency(FA, Bad);
    EXPECT_FALSE(Findings.empty());
  }
}

TEST(ConsistencyCheck, StaleNodeTotalsAreFlagged) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  FrequencyTotals Bad = Est->totalsFor(*Fix.Main);
  NodeId D = FA.cfg().nodeForStmt(Fix.D);
  Bad.Node[D] += 4.0; // Node totals no longer satisfy equation 3.
  EXPECT_FALSE(checkFrequencyConsistency(FA, Bad).empty());
}

TEST(IdenticalControlDependence, OneCounterServesSeveralStatements) {
  // The paper's opt-1 example: I=1 and K=3 are identically control
  // dependent on the C1 condition even though they sit in different
  // basic blocks; one counter tracks both.
  const char *Src = R"(
program main
  integer c1, i, j, k, l
  c1 = 1
  if (c1 .eq. 1) then
    i = 1
    j = 2
    if (j .eq. 2) l = 4
    k = 3
  endif
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  const Function *Main = P->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  FrequencyTotals T = Est->totalsFor(*Main);
  Frequencies Freqs = computeFrequencies(FA, T);

  // Find the statements by their printed form.
  auto NodeOf = [&](const std::string &Text) {
    for (StmtId S = 0; S < Main->numStmts(); ++S)
      if (printStmt(*Main, Main->stmt(S)) == Text)
        return FA.cfg().nodeForStmt(S);
    return InvalidNode;
  };
  NodeId I1 = NodeOf("i = 1");
  NodeId K3 = NodeOf("k = 3");
  NodeId J2 = NodeOf("j = 2");
  ASSERT_NE(I1, InvalidNode);
  ASSERT_NE(K3, InvalidNode);

  // Identical frequencies and identical FCDG parents.
  EXPECT_DOUBLE_EQ(Freqs.NodeFreq[I1], Freqs.NodeFreq[K3]);
  EXPECT_DOUBLE_EQ(Freqs.NodeFreq[I1], Freqs.NodeFreq[J2]);
  auto Parents = [&](NodeId N) {
    std::set<std::pair<NodeId, LabelId>> Out;
    for (EdgeId E : FA.cd().fcdg().inEdges(N)) {
      const Digraph::Edge &Ed = FA.cd().fcdg().edge(E);
      Out.insert({Ed.From, Ed.Label});
    }
    return Out;
  };
  EXPECT_EQ(Parents(I1), Parents(K3));

  // The smart plan spends at most one counter on that whole region: the
  // number of counters is far below the statement count.
  EXPECT_LE(Est->plan().of(*Main).numCounters(), 4u);
}

} // namespace
