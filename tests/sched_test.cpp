//===--- tests/sched_test.cpp - Chunk scheduling tests --------------------===//
//
// The Kruskal-Weiss application of Section 5: the chunk-size formula's
// limiting behaviour, the self-scheduling simulator, and the end-to-end
// adviser driven by TIME/VAR analysis results.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "sched/ChunkScheduling.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(KruskalWeiss, ZeroVarianceMeansOneChunkPerProcessor) {
  EXPECT_EQ(kruskalWeissChunkSize(1000, 10, 5.0, 0.0, 2.0), 100u);
  EXPECT_EQ(kruskalWeissChunkSize(1001, 10, 5.0, 0.0, 2.0), 101u);
  EXPECT_EQ(kruskalWeissChunkSize(5, 10, 5.0, 0.0, 2.0), 1u);
}

TEST(KruskalWeiss, ChunkShrinksAsVarianceGrows) {
  uint64_t Prev = kruskalWeissChunkSize(10000, 16, 10.0, 0.0, 4.0);
  for (double Var : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    uint64_t K = kruskalWeissChunkSize(10000, 16, 10.0, Var, 4.0);
    EXPECT_LE(K, Prev) << "variance " << Var;
    EXPECT_GE(K, 1u);
    Prev = K;
  }
  // Extreme variance approaches single-iteration chunks.
  EXPECT_LE(kruskalWeissChunkSize(10000, 16, 10.0, 1e9, 4.0), 4u);
}

TEST(KruskalWeiss, ChunkGrowsWithOverhead) {
  uint64_t Small = kruskalWeissChunkSize(10000, 16, 10.0, 25.0, 0.5);
  uint64_t Large = kruskalWeissChunkSize(10000, 16, 10.0, 25.0, 50.0);
  EXPECT_GT(Large, Small);
}

TEST(KruskalWeiss, SingleProcessorTakesEverything) {
  EXPECT_EQ(kruskalWeissChunkSize(640, 1, 3.0, 100.0, 1.0), 640u);
}

TEST(ChunkSimulator, DeterministicWorkBalancesPerfectly) {
  // 100 iterations of cost 2 on 4 processors, chunk 25, no overhead:
  // makespan is exactly 50.
  ChunkSimResult R = simulateChunkedLoop(100, 4, 25, 0.0,
                                         [] { return 2.0; });
  EXPECT_DOUBLE_EQ(R.Makespan, 50.0);
  EXPECT_EQ(R.Chunks, 4u);
  EXPECT_DOUBLE_EQ(R.TotalWork, 200.0);
  EXPECT_DOUBLE_EQ(R.efficiency(4), 1.0);
}

TEST(ChunkSimulator, OverheadAccumulatesPerChunk) {
  ChunkSimResult OneChunk =
      simulateChunkedLoop(64, 1, 64, 10.0, [] { return 1.0; });
  ChunkSimResult ManyChunks =
      simulateChunkedLoop(64, 1, 1, 10.0, [] { return 1.0; });
  EXPECT_DOUBLE_EQ(OneChunk.Makespan, 64.0 + 10.0);
  EXPECT_DOUBLE_EQ(ManyChunks.Makespan, 64.0 + 64.0 * 10.0);
}

TEST(ChunkSimulator, HighVariancePrefersSmallChunks) {
  // Bimodal iteration times: mostly cheap, occasionally very expensive.
  // With N/P chunks one unlucky processor drags the makespan; smaller
  // chunks rebalance. This is the paper's motivation for variance.
  auto MakeDraw = [](uint64_t Seed) {
    auto R = std::make_shared<Rng>(Seed);
    return [R]() { return R->bernoulli(0.05) ? 200.0 : 1.0; };
  };
  const uint64_t N = 2000;
  const unsigned P = 8;
  const double Overhead = 0.5;

  double BigAvg = 0.0, SmallAvg = 0.0;
  for (uint64_t Trial = 0; Trial < 10; ++Trial) {
    BigAvg += simulateChunkedLoop(N, P, N / P, Overhead,
                                  MakeDraw(1000 + Trial))
                  .Makespan;
    SmallAvg += simulateChunkedLoop(N, P, 8, Overhead,
                                    MakeDraw(1000 + Trial))
                    .Makespan;
  }
  EXPECT_LT(SmallAvg, BigAvg);
}

TEST(ChunkSimulator, KruskalWeissChoiceIsCompetitive) {
  // The KW chunk must not lose badly to either extreme.
  const uint64_t N = 4000;
  const unsigned P = 8;
  const double Overhead = 2.0;
  const double Mean = 1.0 + 0.05 * 200.0;
  // Bimodal variance: p(1-p)(200-1)^2-ish.
  const double Var = 0.05 * 0.95 * 199.0 * 199.0;
  uint64_t K = kruskalWeissChunkSize(N, P, Mean, Var, Overhead);

  auto MakeDraw = [](uint64_t Seed) {
    auto R = std::make_shared<Rng>(Seed);
    return [R]() { return R->bernoulli(0.05) ? 200.0 : 1.0; };
  };
  double Kw = 0.0, Huge = 0.0, Tiny = 0.0;
  for (uint64_t Trial = 0; Trial < 10; ++Trial) {
    Kw += simulateChunkedLoop(N, P, K, Overhead, MakeDraw(7 + Trial))
              .Makespan;
    Huge += simulateChunkedLoop(N, P, N / P, Overhead, MakeDraw(7 + Trial))
                .Makespan;
    Tiny += simulateChunkedLoop(N, P, 1, Overhead, MakeDraw(7 + Trial))
                .Makespan;
  }
  EXPECT_LT(Kw, Huge * 1.02);
  EXPECT_LT(Kw, Tiny * 1.02);
}

TEST(Adviser, PullsMomentsFromTimeAnalysis) {
  // A parallel-ish loop whose body contains a branch: the adviser must
  // report the branch-induced variance and a chunk below N/P; a
  // branch-free loop of the same mean must get chunk N/P.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId S = B.intVar("seed"), R = B.intVar("rnd"), A = B.intVar("acc");
  VarId I = B.intVar("i"), J = B.intVar("j");
  B.assign(S, B.lit(12345));

  StmtId VarLoop = B.doLoop(I, B.lit(1), B.lit(64));
  B.assign(S, B.intrinsic(Intrinsic::Mod,
                          {B.add(B.mul(B.var(S), B.lit(1103)), B.lit(7919)),
                           B.lit(100003)}));
  B.assign(R, B.intrinsic(Intrinsic::Mod, {B.var(S), B.lit(100)}));
  B.ifGoto(B.ge(B.var(R), B.lit(50)), 10);
  // Expensive half.
  for (int W = 0; W < 10; ++W)
    B.assign(A, B.add(B.var(A), B.lit(W)));
  B.label(10).cont();
  B.endDo();

  StmtId FlatLoop = B.doLoop(J, B.lit(1), B.lit(64));
  for (int W = 0; W < 5; ++W)
    B.assign(A, B.add(B.var(A), B.lit(W)));
  B.endDo();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  DiagnosticEngine Diags2;
  auto Est = Estimator::create(Prog, CostModel::optimizing(), EstimatorOptions(Diags2));
  ASSERT_NE(Est, nullptr) << Diags2.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  TimeAnalysis TA = Est->analyze();

  const Function *Main = Prog.entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  FrequencyTotals Totals = Est->totalsFor(*Main);
  Frequencies Freqs = computeFrequencies(FA, Totals);

  const unsigned P = 8;
  const double Overhead = 3.0;
  LoopScheduleAdvice Branchy = adviseChunkSize(
      TA, FA, Freqs, FA.cfg().nodeForStmt(VarLoop), P, Overhead);
  LoopScheduleAdvice Flat = adviseChunkSize(
      TA, FA, Freqs, FA.cfg().nodeForStmt(FlatLoop), P, Overhead);

  EXPECT_NEAR(Branchy.TripCount, 64.0, 1e-9);
  EXPECT_GT(Branchy.BodyVar, 0.0);
  EXPECT_DOUBLE_EQ(Flat.BodyVar, 0.0);
  EXPECT_EQ(Flat.Chunk, 8u); // N/P with zero variance.
  EXPECT_LT(Branchy.Chunk, Flat.Chunk);
  EXPECT_GE(Branchy.Chunk, 1u);
}

} // namespace
