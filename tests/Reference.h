//===--- tests/Reference.h - Brute-force reference algorithms ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slow, obviously-correct reference implementations used to validate the
/// production algorithms: reachability-based dominators and a literal
/// transcription of the paper's Definition 2 of control dependence.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_TESTS_REFERENCE_H
#define PTRAN_TESTS_REFERENCE_H

#include "cdg/ControlDependence.h"
#include "graph/Digraph.h"

#include <set>
#include <tuple>
#include <vector>

namespace ptran {
namespace testing {

/// Brute-force dominator sets: A dominates B iff removing A makes B
/// unreachable from Root (plus A dominating itself). Unreachable nodes
/// have empty sets.
std::vector<std::set<NodeId>> bruteForceDominators(const Digraph &G,
                                                   NodeId Root);

/// Brute-force postdominator relation on \p G with exit \p Stop:
/// Result[B] contains every A that postdominates B.
std::vector<std::set<NodeId>> bruteForcePostDominators(const Digraph &G,
                                                       NodeId Stop);

/// A literal implementation of Definition 2: Y is control dependent on
/// (X, L) iff Y does not postdominate X, and there is a path from X to Y,
/// starting with an L-labelled edge, whose intermediate nodes are all
/// postdominated by Y. Returns (X, Y, L) triples.
std::set<std::tuple<NodeId, NodeId, LabelId>>
bruteForceControlDependence(const Digraph &G, NodeId Stop);

} // namespace testing
} // namespace ptran

#endif // PTRAN_TESTS_REFERENCE_H
