//===--- tests/ecfg_test.cpp - Extended CFG construction tests ------------===//
//
// Section 2's ECFG algorithm: preheaders, postexits, START/STOP, pseudo
// edges, and the structural verifier — on the Figure 1 example, the
// Table 1 workloads and random programs.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "ecfg/Ecfg.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

struct BuiltEcfg {
  Cfg C;
  IntervalStructure IS;
  Ecfg E;
};

BuiltEcfg buildFor(const Function &F, bool Elide = true) {
  BuiltEcfg Out;
  Out.C = buildCfg(F);
  if (Elide)
    elideGotoNodes(Out.C);
  DiagnosticEngine Diags;
  auto IS = IntervalStructure::compute(Out.C, Diags);
  EXPECT_TRUE(IS.has_value()) << Diags.str();
  Out.IS = std::move(*IS);
  Out.E = buildEcfg(Out.C, Out.IS);
  return Out;
}

TEST(Ecfg, Figure2Structure) {
  Figure1Program Fix = makeFigure1();
  BuiltEcfg B = buildFor(*Fix.Main);
  const Ecfg &E = B.E;
  const Digraph &G = E.cfg().graph();

  // One loop -> one preheader; two loop exits -> two postexits.
  ASSERT_EQ(B.IS.headers().size(), 1u);
  NodeId H = B.IS.headers()[0];
  NodeId Ph = E.preheaderOf(H);
  ASSERT_NE(Ph, InvalidNode);
  EXPECT_EQ(E.headerOf(Ph), H);
  EXPECT_EQ(E.cfg().nodeType(Ph), CfgNodeType::Preheader);
  EXPECT_EQ(E.cfg().nodeType(H), CfgNodeType::Header);
  EXPECT_EQ(E.postexits().size(), 2u);

  // The preheader has the U edge to the header plus one pseudo edge per
  // postexit (Figure 2's Z edges).
  unsigned PseudoCount = 0;
  bool SawHeaderEdge = false;
  for (EdgeId Out : G.outEdges(Ph)) {
    const Digraph::Edge &Ed = G.edge(Out);
    if (static_cast<CfgLabel>(Ed.Label) == CfgLabel::Z) {
      ++PseudoCount;
      EXPECT_EQ(E.cfg().nodeType(Ed.To), CfgNodeType::Postexit);
    } else {
      EXPECT_EQ(Ed.To, H);
      SawHeaderEdge = true;
    }
  }
  EXPECT_TRUE(SawHeaderEdge);
  EXPECT_EQ(PseudoCount, 2u);

  // START has its U entry edge and the pseudo edge to STOP.
  EXPECT_EQ(G.outDegree(E.start()), 2u);
  EXPECT_NE(G.findEdge(E.start(), E.stop(),
                       static_cast<LabelId>(CfgLabel::Z)),
            InvalidEdge);

  // Per-loop ITERATE nodes exist and are isolated in the ECFG itself.
  NodeId It = E.iterateOf(H);
  ASSERT_NE(It, InvalidNode);
  EXPECT_EQ(E.iterateHeaderOf(It), H);
  EXPECT_EQ(G.outDegree(It), 0u);
  EXPECT_EQ(G.inDegree(It), 0u);

  // The full structural verifier agrees.
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyEcfg(E, B.C, B.IS, Diags)) << Diags.str();
}

TEST(Ecfg, EntryAtLoopHeaderRoutesThroughPreheader) {
  // A program whose first statement heads a loop: START must enter via
  // the preheader (our documented generalization of step 4).
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId W = B.intVar("w");
  B.label(10).assign(W, B.add(B.var(W), B.lit(1)));
  B.ifGoto(B.le(B.var(W), B.lit(5)), 10);
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  BuiltEcfg Built = buildFor(*Prog.findFunction("main"));
  NodeId H = Built.IS.headers().at(0);
  NodeId Ph = Built.E.preheaderOf(H);
  const Digraph &G = Built.E.cfg().graph();
  // START's non-pseudo successor is the preheader, not the header.
  for (EdgeId Out : G.outEdges(Built.E.start())) {
    const Digraph::Edge &Ed = G.edge(Out);
    if (static_cast<CfgLabel>(Ed.Label) != CfgLabel::Z) {
      EXPECT_EQ(Ed.To, Ph);
    }
  }
  EXPECT_TRUE(verifyEcfg(Built.E, Built.C, Built.IS, Diags)) << Diags.str();
}

TEST(Ecfg, ReturnInsideLoopGetsPostexitToStop) {
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId W = B.intVar("w");
  StmtId Head = B.label(10).assign(W, B.add(B.var(W), B.lit(1)));
  StmtId Ret = B.ifGoto(B.gt(B.var(W), B.lit(100)), 20);
  B.ifGoto(B.le(B.var(W), B.lit(5)), 10);
  B.gotoLabel(30);
  B.label(20).ret();
  B.label(30).cont();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();
  (void)Head;
  (void)Ret;

  BuiltEcfg Built = buildFor(*Prog.findFunction("main"));
  // Fall-through exit and the RETURN path both leave through postexits or
  // direct STOP edges; the verifier checks the wiring in detail.
  EXPECT_TRUE(verifyEcfg(Built.E, Built.C, Built.IS, Diags)) << Diags.str();
  EXPECT_GE(Built.E.postexits().size(), 1u);
}

TEST(Ecfg, SiblingLoopJumpCreatesExitIntoEntry) {
  // GOTO from inside one loop straight into another loop's header: the
  // exit's postexit must continue at the target's preheader.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId W = B.intVar("w");
  VarId V = B.intVar("v");
  B.assign(W, B.lit(0));
  StmtId H1 = B.label(10).assign(W, B.add(B.var(W), B.lit(1)));
  B.ifGoto(B.gt(B.var(W), B.lit(3)), 20); // Exit loop 1 into loop 2's head.
  B.ifGoto(B.le(B.var(W), B.lit(5)), 10);
  StmtId H2 = B.label(20).assign(V, B.add(B.var(V), B.lit(1)));
  B.ifGoto(B.le(B.var(V), B.lit(4)), 20);
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  BuiltEcfg Built = buildFor(*Prog.findFunction("main"));
  EXPECT_TRUE(verifyEcfg(Built.E, Built.C, Built.IS, Diags)) << Diags.str();

  NodeId Loop2Head = Built.C.nodeForStmt(H2);
  NodeId Ph2 = Built.E.preheaderOf(Loop2Head);
  ASSERT_NE(Ph2, InvalidNode);
  // Some postexit continues at loop 2's preheader.
  bool Found = false;
  for (const Ecfg::PostexitInfo &Info : Built.E.postexits())
    for (NodeId S : Built.E.cfg().graph().successors(Info.Postexit))
      Found |= S == Ph2;
  EXPECT_TRUE(Found);
  (void)H1;
}

TEST(Ecfg, WorkloadsVerifyStructurally) {
  for (const Workload *W : table1Workloads()) {
    std::unique_ptr<Program> Prog = parseWorkload(*W);
    DiagnosticEngine Diags;
    for (const auto &F : Prog->functions()) {
      BuiltEcfg Built = buildFor(*F);
      EXPECT_TRUE(verifyEcfg(Built.E, Built.C, Built.IS, Diags))
          << W->Name << "/" << F->name() << "\n"
          << Diags.str();
    }
  }
}

class RandomProgramEcfg : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramEcfg, VerifierPasses) {
  std::unique_ptr<Program> Prog =
      makeRandomProgram(GetParam(), RandomProgramConfig());
  DiagnosticEngine Diags;
  for (const auto &F : Prog->functions()) {
    BuiltEcfg Built = buildFor(*F);
    EXPECT_TRUE(verifyEcfg(Built.E, Built.C, Built.IS, Diags))
        << F->name() << "\n"
        << Diags.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEcfg,
                         ::testing::Range<uint64_t>(300, 330));

} // namespace
