//===--- tests/graph_test.cpp - Graph algorithm tests ---------------------===//
//
// Unit and property tests for the generic graph layer: the labelled
// multigraph, DFS classification, (post)dominators (validated against the
// brute-force reference on random graphs), SCCs and topological order.
//
//===----------------------------------------------------------------------===//

#include "Reference.h"

#include "graph/DepthFirst.h"
#include "graph/Dominators.h"
#include "graph/Scc.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(Digraph, BasicMutationAndQueries) {
  Digraph G;
  NodeId A = G.addNode();
  NodeId B = G.addNode();
  NodeId C = G.addNodes(2);
  EXPECT_EQ(G.numNodes(), 4u);

  EdgeId E1 = G.addEdge(A, B, 0);
  EdgeId E2 = G.addEdge(A, B, 1); // Parallel edge, different label.
  EdgeId E3 = G.addEdge(B, C, 0);
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_EQ(G.outDegree(A), 2u);
  EXPECT_EQ(G.inDegree(B), 2u);
  EXPECT_EQ(G.findEdge(A, B, 1), E2);
  EXPECT_EQ(G.findEdge(A, B, 2), InvalidEdge);

  G.eraseEdge(E1);
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_EQ(G.outDegree(A), 1u);
  EXPECT_FALSE(G.isLive(E1));
  EXPECT_TRUE(G.isLive(E2));
  // Erasing twice is a no-op.
  G.eraseEdge(E1);
  EXPECT_EQ(G.numEdges(), 2u);

  Digraph R = G.reversed();
  EXPECT_EQ(R.numEdges(), 2u);
  EXPECT_EQ(R.successors(B), std::vector<NodeId>{A});
  (void)E3;
}

TEST(DepthFirst, ClassifiesEdgesOnDiamondWithLoop) {
  // 0 -> 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 1 (retreating), 0 -> 4 (forward).
  Digraph G(5);
  G.addEdge(0, 1, 0);
  EdgeId ToTwo = G.addEdge(1, 2, 0);
  G.addEdge(2, 4, 0);
  EdgeId ToThree = G.addEdge(1, 3, 0);
  EdgeId Cross = G.addEdge(3, 4, 0);
  EdgeId Back = G.addEdge(4, 1, 0);
  EdgeId Fwd = G.addEdge(0, 4, 0);

  DfsResult Dfs(CsrGraph(G).view(), 0);
  EXPECT_EQ(Dfs.edgeKind(ToTwo), DfsEdgeKind::Tree);
  EXPECT_EQ(Dfs.edgeKind(Back), DfsEdgeKind::Retreating);
  EXPECT_EQ(Dfs.edgeKind(Fwd), DfsEdgeKind::Forward);
  // 3 -> 4: 4 was finished via the 2-branch first (DFS visits edge order).
  EXPECT_EQ(Dfs.edgeKind(Cross), DfsEdgeKind::Cross);
  EXPECT_TRUE(Dfs.isTreeAncestor(0, 4));
  EXPECT_TRUE(Dfs.isTreeAncestor(1, 2));
  EXPECT_FALSE(Dfs.isTreeAncestor(2, 3));
  EXPECT_EQ(Dfs.reversePostorder().front(), 0u);
  (void)ToThree;
}

TEST(DepthFirst, UnreachableNodesAreSkipped) {
  Digraph G(4);
  G.addEdge(0, 1, 0);
  G.addEdge(2, 3, 0); // 2, 3 unreachable from 0.
  DfsResult Dfs(CsrGraph(G).view(), 0);
  EXPECT_TRUE(Dfs.isReachable(1));
  EXPECT_FALSE(Dfs.isReachable(2));
  EXPECT_EQ(Dfs.numReachable(), 2u);
}

TEST(Topological, OrdersDagsAndRejectsCycles) {
  Digraph Dag(4);
  Dag.addEdge(0, 1, 0);
  Dag.addEdge(0, 2, 0);
  Dag.addEdge(1, 3, 0);
  Dag.addEdge(2, 3, 0);
  auto Order = topologicalOrder(CsrGraph(Dag).view());
  ASSERT_TRUE(Order.has_value());
  std::vector<unsigned> Pos(4);
  for (unsigned I = 0; I < Order->size(); ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[0], Pos[1]);
  EXPECT_LT(Pos[1], Pos[3]);
  EXPECT_LT(Pos[2], Pos[3]);

  Dag.addEdge(3, 0, 0);
  EXPECT_FALSE(topologicalOrder(CsrGraph(Dag).view()).has_value());
}

/// Random digraph over N nodes, edges kept with probability P, always
/// including a spine 0 -> 1 -> ... so most nodes are reachable.
Digraph randomDigraph(Rng &R, unsigned N, double P) {
  Digraph G(N);
  for (NodeId I = 0; I + 1 < N; ++I)
    if (R.bernoulli(0.8))
      G.addEdge(I, I + 1, 0);
  for (NodeId A = 0; A < N; ++A)
    for (NodeId B = 0; B < N; ++B)
      if (A != B && R.bernoulli(P))
        G.addEdge(A, B, 0);
  return G;
}

class DominatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominatorProperty, MatchesBruteForceOnRandomGraphs) {
  Rng R(GetParam());
  unsigned N = static_cast<unsigned>(R.uniformInt(3, 14));
  Digraph G = randomDigraph(R, N, 0.18);

  DominatorTree Dom(CsrGraph(G).view(), 0);
  std::vector<std::set<NodeId>> Truth = bruteForceDominators(G, 0);
  DfsResult Dfs(CsrGraph(G).view(), 0);

  for (NodeId B = 0; B < N; ++B) {
    if (!Dfs.isReachable(B)) {
      EXPECT_FALSE(Dom.isReachable(B));
      continue;
    }
    for (NodeId A = 0; A < N; ++A) {
      if (!Dfs.isReachable(A))
        continue;
      EXPECT_EQ(Dom.dominates(A, B), Truth[B].count(A) != 0)
          << A << " dom " << B << " seed " << GetParam();
    }
    // The idom must be the unique closest strict dominator.
    if (B != 0u) {
      NodeId Idom = Dom.idom(B);
      EXPECT_TRUE(Truth[B].count(Idom));
      for (NodeId A : Truth[B])
        if (A != B && A != Idom) {
          EXPECT_TRUE(Truth[Idom].count(A)) << "idom not closest";
        }
    }
  }

  // Nearest common dominator agrees with set intersection.
  for (NodeId A = 0; A < N; ++A)
    for (NodeId B = 0; B < N; ++B) {
      if (!Dfs.isReachable(A) || !Dfs.isReachable(B))
        continue;
      NodeId Nca = Dom.findNearestCommonDominator(A, B);
      EXPECT_TRUE(Truth[A].count(Nca) && Truth[B].count(Nca));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorProperty,
                         ::testing::Range<uint64_t>(1, 31));

TEST(PostDominators, SimpleDiamond) {
  // 0 -> {1, 2} -> 3; 3 postdominates everything.
  Digraph G(4);
  G.addEdge(0, 1, 0);
  G.addEdge(0, 2, 0);
  G.addEdge(1, 3, 0);
  G.addEdge(2, 3, 0);
  DominatorTree Pdt(CsrGraph(G).view(), 3, DominatorTree::Direction::Post);
  EXPECT_TRUE(Pdt.dominates(3, 0));
  EXPECT_TRUE(Pdt.dominates(3, 1));
  EXPECT_FALSE(Pdt.dominates(1, 0));
  EXPECT_EQ(Pdt.idom(0), 3u);
}

TEST(Reducibility, DetectsClassicIrreducibleTriangle) {
  // 0 -> 1, 0 -> 2, 1 <-> 2: the textbook irreducible region.
  Digraph G(3);
  G.addEdge(0, 1, 0);
  G.addEdge(0, 2, 0);
  G.addEdge(1, 2, 0);
  G.addEdge(2, 1, 0);
  EXPECT_FALSE(isReducible(CsrGraph(G).view(), 0));

  // A natural loop is reducible.
  Digraph L(3);
  L.addEdge(0, 1, 0);
  L.addEdge(1, 2, 0);
  L.addEdge(2, 1, 0);
  EXPECT_TRUE(isReducible(CsrGraph(L).view(), 0));
}

TEST(Scc, FindsComponentsInCalleeFirstOrder) {
  // 0 -> 1 <-> 2, 1 -> 3; components: {0}, {1,2}, {3}.
  Digraph G(4);
  G.addEdge(0, 1, 0);
  G.addEdge(1, 2, 0);
  G.addEdge(2, 1, 0);
  G.addEdge(1, 3, 0);
  SccResult S = computeSccs(CsrGraph(G).view());
  EXPECT_EQ(S.numComponents(), 3u);
  EXPECT_EQ(S.Component[1], S.Component[2]);
  EXPECT_NE(S.Component[0], S.Component[1]);
  // Callee-first: an edge A -> B implies Component[A] > Component[B].
  EXPECT_GT(S.Component[0], S.Component[1]);
  EXPECT_GT(S.Component[1], S.Component[3]);
  EXPECT_TRUE(S.isInCycle(CsrGraph(G).view(), 1));
  EXPECT_FALSE(S.isInCycle(CsrGraph(G).view(), 0));

  // Self loops count as cycles.
  Digraph Self(1);
  Self.addEdge(0, 0, 0);
  SccResult S2 = computeSccs(CsrGraph(Self).view());
  EXPECT_TRUE(S2.isInCycle(CsrGraph(Self).view(), 0));
}

class SccProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SccProperty, ComponentNumberingIsReverseTopological) {
  Rng R(GetParam());
  unsigned N = static_cast<unsigned>(R.uniformInt(3, 16));
  Digraph G = randomDigraph(R, N, 0.15);
  SccResult S = computeSccs(CsrGraph(G).view());
  for (NodeId A = 0; A < N; ++A)
    for (NodeId B : G.successors(A))
      if (S.Component[A] != S.Component[B]) {
        EXPECT_GT(S.Component[A], S.Component[B]);
      }
  // Mutual reachability iff same component.
  for (NodeId A = 0; A < N; ++A) {
    DfsResult FromA(CsrGraph(G).view(), A);
    for (NodeId B = 0; B < N; ++B) {
      if (S.Component[A] != S.Component[B])
        continue;
      EXPECT_TRUE(FromA.isReachable(B))
          << A << " cannot reach same-component " << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccProperty,
                         ::testing::Range<uint64_t>(100, 120));

} // namespace
