//===--- tests/profile_property_test.cpp - Recovery == ground truth -------===//
//
// The central property of Section 3: the optimized counter placements
// (opt1 / opt1+2 / smart) must recover exactly the TOTAL_FREQ values that
// an exhaustive profiler observes, on randomly generated programs and on
// the Table 1 workloads, while using fewer counters and fewer dynamic
// updates.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "profile/ProfileRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

struct ProfiledProgram {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ProgramAnalysis> PA;
  ProgramPlan Plans[3];
  std::unique_ptr<ProfileRuntime> Runtimes[3];
  std::unique_ptr<ExactProfile> Exact;
  RunResult Result;
};

constexpr ProfileMode OptimizedModes[3] = {ProfileMode::Opt1,
                                           ProfileMode::Opt12,
                                           ProfileMode::Smart};

/// Runs \p Prog once with an exact profiler and all three optimized
/// runtimes attached simultaneously.
ProfiledProgram profileOnce(std::unique_ptr<Program> Prog) {
  ProfiledProgram Out;
  Out.Prog = std::move(Prog);
  DiagnosticEngine Diags;
  Out.PA = ProgramAnalysis::compute(*Out.Prog, Diags);
  EXPECT_NE(Out.PA, nullptr) << Diags.str();
  if (!Out.PA)
    return Out;

  CostModel CM = CostModel::optimizing();
  Interpreter Interp(*Out.Prog, CM);
  Out.Exact = std::make_unique<ExactProfile>(*Out.PA);
  Interp.addObserver(Out.Exact.get());
  for (int M = 0; M < 3; ++M) {
    Out.Plans[M] = ProgramPlan::build(*Out.PA, OptimizedModes[M]);
    Out.Runtimes[M] =
        std::make_unique<ProfileRuntime>(*Out.PA, Out.Plans[M], CM);
    Interp.addObserver(Out.Runtimes[M].get());
  }
  Out.Result = Interp.run();
  return Out;
}

void expectRecoveryMatchesExact(const ProfiledProgram &P) {
  ASSERT_TRUE(P.Result.Ok) << P.Result.Error;
  for (const auto &F : P.Prog->functions()) {
    const FunctionAnalysis &FA = P.PA->of(*F);
    FrequencyTotals Truth = P.Exact->totals(*F);
    for (int M = 0; M < 3; ++M) {
      FrequencyTotals Got = P.Runtimes[M]->recover(*F);
      ASSERT_TRUE(Got.Ok) << profileModeName(OptimizedModes[M])
                          << " recovery failed for " << F->name();
      for (const ControlCondition &C : FA.cd().conditions()) {
        EXPECT_NEAR(Got.condTotal(C), Truth.condTotal(C), 1e-6)
            << profileModeName(OptimizedModes[M]) << " condition ("
            << FA.ecfg().cfg().nodeName(C.Node) << ", "
            << cfgLabelName(C.Label) << ") in " << F->name() << "\n"
            << printFunction(*F);
      }
      for (NodeId N : FA.cd().topoOrder()) {
        EXPECT_NEAR(Got.nodeTotal(N), Truth.nodeTotal(N), 1e-6)
            << profileModeName(OptimizedModes[M]) << " node total of "
            << FA.ecfg().cfg().nodeName(N) << " in " << F->name();
      }
    }
  }
}

class RandomProgramRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramRecovery, AllOptimizedModesMatchExactCounts) {
  RandomProgramConfig Cfg;
  std::unique_ptr<Program> Prog = makeRandomProgram(GetParam(), Cfg);
  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyProgram(*Prog, Diags)) << Diags.str();
  ProfiledProgram P = profileOnce(std::move(Prog));
  expectRecoveryMatchesExact(P);
}

TEST_P(RandomProgramRecovery, PlansAreSymbolicallyRecoverable) {
  RandomProgramConfig Cfg;
  std::unique_ptr<Program> Prog = makeRandomProgram(GetParam(), Cfg);
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  for (const auto &F : Prog->functions())
    for (ProfileMode M : OptimizedModes) {
      FunctionPlan Plan = FunctionPlan::build(PA->of(*F), M);
      EXPECT_TRUE(planIsRecoverable(PA->of(*F), Plan))
          << profileModeName(M) << " plan unrecoverable for " << F->name();
    }
}

TEST_P(RandomProgramRecovery, OptimizationMonotonicallyReducesCounters) {
  RandomProgramConfig Cfg;
  std::unique_ptr<Program> Prog = makeRandomProgram(GetParam(), Cfg);
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();

  ProgramPlan Naive = ProgramPlan::build(*PA, ProfileMode::Naive);
  ProgramPlan Opt1 = ProgramPlan::build(*PA, ProfileMode::Opt1);
  ProgramPlan Opt12 = ProgramPlan::build(*PA, ProfileMode::Opt12);
  ProgramPlan Smart = ProgramPlan::build(*PA, ProfileMode::Smart);

  // Static counter counts: each optimization level may only help.
  EXPECT_LE(Opt12.totalCounters(), Opt1.totalCounters());
  EXPECT_LE(Smart.totalCounters(), Opt12.totalCounters());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramRecovery,
                         ::testing::Range<uint64_t>(1, 41));

TEST(WorkloadRecovery, LivermoreLoops) {
  ProfiledProgram P = profileOnce(parseWorkload(livermoreLoops()));
  expectRecoveryMatchesExact(P);
}

TEST(WorkloadRecovery, SimpleKernel) {
  ProfiledProgram P = profileOnce(parseWorkload(simpleKernel()));
  expectRecoveryMatchesExact(P);
}

TEST(WorkloadRecovery, SmartBeatsNaiveDynamically) {
  // The Table 1 claim, in update counts: smart profiling performs fewer
  // dynamic counter updates than naive per-block profiling.
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  CostModel CM = CostModel::optimizing();

  ProgramPlan NaivePlan = ProgramPlan::build(*PA, ProfileMode::Naive);
  ProgramPlan SmartPlan = ProgramPlan::build(*PA, ProfileMode::Smart);
  ProfileRuntime NaiveRt(*PA, NaivePlan, CM);
  ProfileRuntime SmartRt(*PA, SmartPlan, CM);

  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&NaiveRt);
  Interp.addObserver(&SmartRt);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  uint64_t NaiveUpdates = NaiveRt.dynamicIncrements() + NaiveRt.dynamicAdds();
  uint64_t SmartUpdates = SmartRt.dynamicIncrements() + SmartRt.dynamicAdds();
  EXPECT_LT(SmartUpdates, NaiveUpdates);
  EXPECT_LT(SmartRt.overheadCycles(), NaiveRt.overheadCycles());
}

TEST(NaiveProfile, BlockCountsMatchExactExecution) {
  // The naive plan's block counters must equal the leader statement's
  // exact execution count.
  std::unique_ptr<Program> Prog = makeRandomProgram(7, RandomProgramConfig());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  CostModel CM = CostModel::optimizing();

  ProgramPlan Plan = ProgramPlan::build(*PA, ProfileMode::Naive);
  ProfileRuntime Rt(*PA, Plan, CM);
  ExactProfile Exact(*PA);

  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Rt);
  Interp.addObserver(&Exact);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  for (const auto &F : Prog->functions()) {
    const FunctionAnalysis &FA = PA->of(*F);
    const FunctionPlan &FP = Plan.of(*F);
    std::vector<double> Counters = Rt.countersFor(*F);
    for (unsigned B = 0; B < FP.naiveBlocks().size(); ++B) {
      NodeId Leader = FP.naiveBlocks()[B][0];
      StmtId LeaderStmt = FA.cfg().origin(Leader);
      if (LeaderStmt == InvalidStmt)
        continue;
      EXPECT_DOUBLE_EQ(Counters[B], Exact.stmtCount(*F, LeaderStmt))
          << "block " << B << " in " << F->name();
    }
  }
}

} // namespace
