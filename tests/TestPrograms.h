//===--- tests/TestPrograms.h - Shared test fixtures ------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program fixtures shared by the test suite: the paper's Figure 1
/// fragment (built statement-for-statement so the CFG matches the figure),
/// a random reducible-program generator, and small helpers.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_TESTS_TESTPROGRAMS_H
#define PTRAN_TESTS_TESTPROGRAMS_H

#include "cost/TimeAnalysis.h"
#include "ir/Builder.h"
#include "support/Rng.h"

#include <memory>

namespace ptran {
namespace testing {

/// The paper's running example (Figure 1), arranged so that the loop's IF
/// executes exactly 10 times, M stays >= 0 throughout, and the loop exits
/// via the IF (N .LT. 0) branch — the Figure 3 scenario. The CALL FOO
/// node's cost comes from FOO's TIME(START).
///
/// Statement layout of MAIN (GOTOs are elided into edges by the default
/// pipeline):
///   0  M = 1                  setup
///   1  N = 8                  setup
///   2  10 IF (M .GE. 0) GOTO 30     "A" (loop header)
///   3  IF (N .GE. 0) GOTO 20        "C"
///   4  GOTO 40
///   5  30 IF (N .LT. 0) GOTO 20     "B"
///   6  40 CALL FOO(M, N)            "D"
///   7  GOTO 10
///   8  20 CONTINUE                  "E"
struct Figure1Program {
  std::unique_ptr<Program> Prog;
  /// Statement ids of the named nodes in MAIN.
  StmtId A = 0, B = 0, C = 0, D = 0, E = 0;
  const Function *Main = nullptr;
  const Function *Foo = nullptr;
};

/// Builds the Figure 1 fixture. Aborts on internal construction errors.
Figure1Program makeFigure1();

/// The Figure 3 cost assignment: COST = 1 for IF statements, 100 for the
/// body of FOO (so TIME(FOO START) = 100), 0 for everything else.
TimeAnalysisOptions figure3CostOptions();

/// Configuration for the random program generator.
struct RandomProgramConfig {
  unsigned MaxDepth = 3;          ///< Maximum nesting of generated regions.
  unsigned MaxRegionsPerLevel = 3;///< Regions sequenced at each level.
  bool WithCalls = true;          ///< Generate calls to helper procedures.
  bool WithGotoLoops = true;      ///< Generate IF/GOTO loops, not just DO.
  bool WithLoopExits = true;      ///< Generate premature loop exits.
};

/// Generates a random, reducible, terminating program whose branches are
/// driven by a deterministic pseudo-random sequence computed in-program,
/// so repeated runs take identical paths for a given seed. Used by the
/// profiling property tests.
std::unique_ptr<Program> makeRandomProgram(uint64_t Seed,
                                           const RandomProgramConfig &Config);

} // namespace testing
} // namespace ptran

#endif // PTRAN_TESTS_TESTPROGRAMS_H
