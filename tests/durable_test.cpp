//===--- tests/durable_test.cpp - Crash-safe state store tests ------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the daemon's durable state: the journal record codecs reject
/// every truncation, a journal cut at EVERY byte length recovers (torn
/// tail quarantined, valid prefix intact, journal appendable again),
/// snapshots detect every single-byte corruption, injected kill -9
/// crashes (torn append, post-append, mid-rotate, mid-snapshot) leave a
/// recoverable store, and — the acceptance property — a ServeCore
/// restored from every byte prefix of a real journal answers estimates
/// byte-identically to the live daemon at that prefix. The ubsan preset
/// reruns this binary, which drives every truncation point through the
/// decoders under UndefinedBehaviorSanitizer.
///
//===----------------------------------------------------------------------===//

#include "durable/Journal.h"
#include "durable/Records.h"
#include "durable/Snapshot.h"
#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::durable;
using namespace ptran::serve;

namespace {

//===--- filesystem helpers ----------------------------------------------===//

/// A fresh directory under /tmp, recursively removed on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/ptran-durable-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = Buf;
  }
  ~TempDir() {
    DIR *D = ::opendir(Path.c_str());
    if (D) {
      while (dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Path + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
};

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Out;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Out;
  struct stat St;
  if (::fstat(Fd, &St) == 0) {
    Out.resize(static_cast<size_t>(St.st_size));
    size_t Got = 0;
    while (Got < Out.size()) {
      ssize_t N = ::read(Fd, Out.data() + Got, Out.size() - Got);
      if (N <= 0)
        break;
      Got += static_cast<size_t>(N);
    }
    Out.resize(Got);
  }
  ::close(Fd);
  return Out;
}

void writeFileBytes(const std::string &Path, const uint8_t *Data,
                    size_t Len) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(Fd, 0);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Data + Off, Len - Off);
    ASSERT_GT(N, 0);
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
}

//===--- record fixtures --------------------------------------------------===//

DurableRecord makeCreate() {
  DurableRecord R;
  R.Type = RecordType::SessionCreate;
  R.Session = "s0";
  R.Source = "      program main\n      end\n";
  R.Mode = 3;
  R.LoopVariance = 2;
  R.OnBadProfile = 1;
  return R;
}

DurableRecord makeFold() {
  DurableRecord R;
  R.Type = RecordType::EpochFold;
  R.Session = "s0";
  FoldEntry F;
  F.Function = "leaf";
  F.Conds.push_back({7, 1, 16.0});
  F.Conds.push_back({9, 0, 0.5});
  R.Folds.push_back(F);
  FoldEntry G;
  G.Function = "main";
  G.Conds.push_back({0, 0, 1.0});
  R.Folds.push_back(G);
  R.Clamped.push_back("leaf");
  return R;
}

void expectRecordsEqual(const DurableRecord &A, const DurableRecord &B) {
  EXPECT_EQ(A.Type, B.Type);
  EXPECT_EQ(A.Session, B.Session);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.Mode, B.Mode);
  EXPECT_EQ(A.LoopVariance, B.LoopVariance);
  EXPECT_EQ(A.OnBadProfile, B.OnBadProfile);
  EXPECT_EQ(A.RunCount, B.RunCount);
  EXPECT_EQ(A.Profile, B.Profile);
  EXPECT_EQ(A.FunctionName, B.FunctionName);
  EXPECT_EQ(A.Clamped, B.Clamped);
  ASSERT_EQ(A.Folds.size(), B.Folds.size());
  for (size_t I = 0; I < A.Folds.size(); ++I) {
    EXPECT_EQ(A.Folds[I].Function, B.Folds[I].Function);
    ASSERT_EQ(A.Folds[I].Conds.size(), B.Folds[I].Conds.size());
    for (size_t C = 0; C < A.Folds[I].Conds.size(); ++C) {
      EXPECT_EQ(A.Folds[I].Conds[C].Node, B.Folds[I].Conds[C].Node);
      EXPECT_EQ(A.Folds[I].Conds[C].Label, B.Folds[I].Conds[C].Label);
      EXPECT_EQ(A.Folds[I].Conds[C].Total, B.Folds[I].Conds[C].Total);
    }
  }
}

} // namespace

//===--- record codec -----------------------------------------------------===//

TEST(DurableRecords, RoundTripsEveryRecordType) {
  std::vector<DurableRecord> Originals;
  Originals.push_back(makeCreate());
  {
    DurableRecord R;
    R.Type = RecordType::SessionEvict;
    R.Session = "victim";
    Originals.push_back(R);
  }
  {
    DurableRecord R;
    R.Type = RecordType::RunExec;
    R.Session = "s0";
    R.RunCount = 17;
    Originals.push_back(R);
  }
  Originals.push_back(makeFold());
  {
    DurableRecord R;
    R.Type = RecordType::ProfileIngest;
    R.Session = "s0";
    for (int I = 0; I < 64; ++I)
      R.Profile.push_back(static_cast<uint8_t>(I * 7));
    Originals.push_back(R);
  }
  {
    DurableRecord R;
    R.Type = RecordType::SaturationMark;
    R.Session = "s0";
    R.FunctionName = "leaf";
    Originals.push_back(R);
  }

  for (const DurableRecord &R : Originals) {
    std::vector<uint8_t> Body = encodeRecord(R);
    DurableRecord Back;
    std::string Error;
    ASSERT_TRUE(decodeRecord(Body.data(), Body.size(), Back, Error))
        << Error;
    expectRecordsEqual(R, Back);
  }
}

TEST(DurableRecords, RejectsEveryStrictPrefixTrailingGarbageAndBadTag) {
  // The fattest record exercises every field decoder.
  std::vector<uint8_t> Body = encodeRecord(makeFold());
  DurableRecord Back;
  std::string Error;
  for (size_t Len = 0; Len < Body.size(); ++Len)
    EXPECT_FALSE(decodeRecord(Body.data(), Len, Back, Error))
        << "prefix of " << Len << " bytes decoded";

  std::vector<uint8_t> Longer = Body;
  Longer.push_back(0);
  EXPECT_FALSE(decodeRecord(Longer.data(), Longer.size(), Back, Error));

  std::vector<uint8_t> BadTag = Body;
  BadTag[0] = 99;
  EXPECT_FALSE(decodeRecord(BadTag.data(), BadTag.size(), Back, Error));
}

//===--- journal ----------------------------------------------------------===//

TEST(DeltaJournal, AppendScanRoundTripAssignsMonotonicLsns) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";
  std::string Error;
  DeltaJournal::OpenReport Report;
  {
    auto J = DeltaJournal::open(Path, FsyncPolicy::Always, Report, nullptr,
                                Error);
    ASSERT_TRUE(J) << Error;
    EXPECT_EQ(Report.NextLsn, 1u);
    EXPECT_EQ(J->append(makeCreate(), Error), 1u) << Error;
    EXPECT_EQ(J->append(makeFold(), Error), 2u) << Error;
    DurableRecord Evict;
    Evict.Type = RecordType::SessionEvict;
    Evict.Session = "s0";
    EXPECT_EQ(J->append(Evict, Error), 3u) << Error;
    EXPECT_EQ(J->lastLsn(), 3u);
  }
  std::vector<DurableRecord> Records;
  auto J = DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records,
                              Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_EQ(Report.RecordsScanned, 3u);
  EXPECT_FALSE(Report.TailQuarantined);
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[0].Lsn, 1u);
  EXPECT_EQ(Records[2].Lsn, 3u);
  expectRecordsEqual(Records[0], makeCreate());
  expectRecordsEqual(Records[1], makeFold());
  EXPECT_EQ(Records[2].Type, RecordType::SessionEvict);
  EXPECT_EQ(J->nextLsn(), 4u);
}

TEST(DeltaJournal, EveryBytePrefixRecovers) {
  // Build a small journal and remember where each frame ends; then cut
  // the file at EVERY byte length and prove open() recovers: the complete
  // frames survive, a torn tail (or torn header) is quarantined, and the
  // journal accepts appends again.
  TempDir Dir;
  std::string RefPath = Dir.Path + "/ref.ptwj";
  std::vector<DurableRecord> Originals;
  Originals.push_back(makeCreate());
  {
    DurableRecord R;
    R.Type = RecordType::RunExec;
    R.Session = "s0";
    R.RunCount = 3;
    Originals.push_back(R);
  }
  Originals.push_back(makeFold());
  {
    DurableRecord R;
    R.Type = RecordType::SaturationMark;
    R.Session = "s0";
    R.FunctionName = "leaf";
    Originals.push_back(R);
  }

  std::string Error;
  DeltaJournal::OpenReport Report;
  std::vector<uint64_t> FrameEnds; // File size after each append.
  {
    auto J = DeltaJournal::open(RefPath, FsyncPolicy::Always, Report,
                                nullptr, Error);
    ASSERT_TRUE(J) << Error;
    for (const DurableRecord &R : Originals) {
      ASSERT_NE(J->append(R, Error), 0u) << Error;
      FrameEnds.push_back(J->sizeBytes());
    }
  }
  std::vector<uint8_t> Full = readFileBytes(RefPath);
  ASSERT_EQ(Full.size(), FrameEnds.back());

  std::string CutPath = Dir.Path + "/cut.ptwj";
  std::string QPath = CutPath + ".quarantine";
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    SCOPED_TRACE("prefix length " + std::to_string(Len));
    ::unlink(CutPath.c_str());
    ::unlink(QPath.c_str());
    writeFileBytes(CutPath, Full.data(), Len);

    std::vector<DurableRecord> Records;
    auto J = DeltaJournal::open(CutPath, FsyncPolicy::Never, Report,
                                &Records, Error);
    ASSERT_TRUE(J) << Error; // Corruption is never unrecoverable.

    size_t Complete = 0;
    while (Complete < FrameEnds.size() && FrameEnds[Complete] <= Len)
      ++Complete;
    EXPECT_EQ(Report.RecordsScanned, Complete);
    ASSERT_EQ(Records.size(), Complete);
    for (size_t I = 0; I < Complete; ++I) {
      EXPECT_EQ(Records[I].Lsn, I + 1);
      expectRecordsEqual(Records[I], Originals[I]);
    }

    // Quarantined exactly when the cut fell inside a header or a frame.
    bool AtBoundary = Len == 0 || Len == 16 ||
                      (Complete > 0 && FrameEnds[Complete - 1] == Len);
    EXPECT_EQ(Report.TailQuarantined, !AtBoundary);
    EXPECT_EQ(fileExists(QPath), !AtBoundary);
    if (!AtBoundary) {
      EXPECT_FALSE(Report.TailReason.empty());
      uint64_t Boundary = Len < 16
                              ? 0
                              : (Complete > 0 ? FrameEnds[Complete - 1] : 16);
      EXPECT_EQ(Report.QuarantinedBytes, Len - Boundary);
      // The quarantine file holds exactly the torn suffix.
      EXPECT_EQ(readFileBytes(QPath).size(), Len - Boundary);
    }

    // The recovered journal must accept appends on a clean boundary.
    DurableRecord More;
    More.Type = RecordType::SessionEvict;
    More.Session = "s0";
    EXPECT_EQ(J->append(More, Error), Complete + 1) << Error;
    J.reset();

    std::vector<DurableRecord> Again;
    auto J2 = DeltaJournal::open(CutPath, FsyncPolicy::Never, Report, &Again,
                                 Error);
    ASSERT_TRUE(J2) << Error;
    EXPECT_FALSE(Report.TailQuarantined);
    EXPECT_EQ(Again.size(), Complete + 1);
  }
}

TEST(DeltaJournal, RotationKeepsLsnsGloballyMonotonic) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";
  std::string Error;
  DeltaJournal::OpenReport Report;
  auto J =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, nullptr, Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_EQ(J->append(makeCreate(), Error), 1u);
  EXPECT_EQ(J->append(makeFold(), Error), 2u);
  ASSERT_TRUE(J->rotate(Error)) << Error;
  EXPECT_EQ(J->nextLsn(), 3u);
  EXPECT_EQ(J->sizeBytes(), 16u); // Header only: the records are gone.
  EXPECT_EQ(J->append(makeFold(), Error), 3u);
  J.reset();

  std::vector<DurableRecord> Records;
  auto J2 =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records, Error);
  ASSERT_TRUE(J2) << Error;
  EXPECT_EQ(Report.FirstLsn, 3u);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Lsn, 3u);
}

//===--- injected crashes -------------------------------------------------===//

namespace {

/// Forks, runs \p Child in the child process, and expects the child to
/// die at an injected crash point (_exit(42), the harness's kill -9
/// stand-in). A child that survives exits 7 and fails the expectation.
void expectInjectedCrash(const std::function<void()> &Child) {
  ::fflush(nullptr); // Keep buffered gtest output out of the child.
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    Child();
    ::_exit(7);
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 42)
      << "child did not die at the injected crash point";
}

} // namespace

TEST(DurableCrash, TornAppendQuarantinesExactlyTheTornFrame) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";
  std::string Error;
  DeltaJournal::OpenReport Report;
  {
    auto J = DeltaJournal::open(Path, FsyncPolicy::Always, Report, nullptr,
                                Error);
    ASSERT_TRUE(J) << Error;
    ASSERT_EQ(J->append(makeCreate(), Error), 1u) << Error;
  }

  expectInjectedCrash([&] {
    std::string E;
    DeltaJournal::OpenReport R;
    auto J = DeltaJournal::open(Path, FsyncPolicy::Always, R, nullptr, E);
    if (!J)
      ::_exit(7);
    ScopedFaultInjection Fault("io.torn_write=1");
    if (!Fault.ok())
      ::_exit(7);
    J->append(makeFold(), E); // Dies mid-frame.
  });

  std::vector<DurableRecord> Records;
  auto J =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records, Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_TRUE(Report.TailQuarantined);
  EXPECT_GT(Report.QuarantinedBytes, 0u);
  EXPECT_TRUE(fileExists(Path + ".quarantine"));
  ASSERT_EQ(Records.size(), 1u); // The torn append cost only itself.
  expectRecordsEqual(Records[0], makeCreate());
  EXPECT_EQ(J->append(makeFold(), Error), 2u) << Error;
}

TEST(DurableCrash, CrashAfterAppendKeepsTheFullFrame) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";

  expectInjectedCrash([&] {
    std::string E;
    DeltaJournal::OpenReport R;
    auto J = DeltaJournal::open(Path, FsyncPolicy::Always, R, nullptr, E);
    if (!J)
      ::_exit(7);
    if (J->append(makeCreate(), E) != 1)
      ::_exit(7);
    ScopedFaultInjection Fault("crash.at=durable.append");
    if (!Fault.ok())
      ::_exit(7);
    J->append(makeFold(), E); // Dies right after the frame hit disk.
  });

  std::string Error;
  DeltaJournal::OpenReport Report;
  std::vector<DurableRecord> Records;
  auto J =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records, Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_FALSE(Report.TailQuarantined);
  ASSERT_EQ(Records.size(), 2u); // The acknowledged frame survived whole.
  expectRecordsEqual(Records[1], makeFold());
}

TEST(DurableCrash, CrashMidRotateLeavesTheOldJournalIntact) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";

  expectInjectedCrash([&] {
    std::string E;
    DeltaJournal::OpenReport R;
    auto J = DeltaJournal::open(Path, FsyncPolicy::Always, R, nullptr, E);
    if (!J)
      ::_exit(7);
    if (J->append(makeCreate(), E) != 1 || J->append(makeFold(), E) != 2)
      ::_exit(7);
    ScopedFaultInjection Fault("crash.at=durable.truncate");
    if (!Fault.ok())
      ::_exit(7);
    J->rotate(E); // Dies between writing the replacement and renaming it.
  });

  std::string Error;
  DeltaJournal::OpenReport Report;
  std::vector<DurableRecord> Records;
  auto J =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records, Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_FALSE(Report.TailQuarantined);
  EXPECT_EQ(Report.FirstLsn, 1u); // The rename never happened.
  ASSERT_EQ(Records.size(), 2u);  // Nothing was lost.
}

TEST(DurableCrash, CrashMidSnapshotLeavesThePreviousSnapshot) {
  TempDir Dir;
  DurableSessionState V1;
  V1.Name = "s0";
  V1.Source = "      program main\n      end\n";
  V1.Runs = 1;
  std::string Error;
  ASSERT_TRUE(writeSnapshotFile(Dir.Path, V1, 5, Error)) << Error;

  expectInjectedCrash([&] {
    ScopedFaultInjection Fault("crash.at=durable.snapshot");
    if (!Fault.ok())
      ::_exit(7);
    DurableSessionState V2 = V1;
    V2.Runs = 2;
    std::string E;
    writeSnapshotFile(Dir.Path, V2, 9, E); // Dies before the rename.
  });

  DurableSessionState Back;
  uint64_t Watermark = 0;
  ASSERT_TRUE(readSnapshotFile(Dir.Path + "/" + snapshotFileName("s0"), Back,
                               Watermark, Error))
      << Error;
  EXPECT_EQ(Back.Runs, 1u); // Still version 1.
  EXPECT_EQ(Watermark, 5u);
}

//===--- snapshots --------------------------------------------------------===//

namespace {

DurableSessionState makeState() {
  DurableSessionState S;
  S.Name = "s0";
  S.Source = "      program main\n      end\n";
  S.Mode = 3;
  S.LoopVariance = 1;
  S.OnBadProfile = 1;
  S.Runs = 4;
  for (int I = 0; I < 32; ++I)
    S.ProfileImage.push_back(static_cast<uint8_t>(I));
  FoldEntry F;
  F.Function = "leaf";
  F.Conds.push_back({3, 1, 128.0});
  S.External.push_back(F);
  S.Saturated.push_back("leaf");
  S.Quarantined.push_back({"bad", "profile failed checksum"});
  return S;
}

} // namespace

TEST(DurableSnapshot, RoundTripsFullState) {
  DurableSessionState S = makeState();
  std::vector<uint8_t> Image = encodeSnapshot(S, 41);
  DurableSessionState Back;
  uint64_t Watermark = 0;
  std::string Error;
  ASSERT_TRUE(decodeSnapshot(Image.data(), Image.size(), Back, Watermark,
                             Error))
      << Error;
  EXPECT_EQ(Watermark, 41u);
  EXPECT_EQ(Back.Name, S.Name);
  EXPECT_EQ(Back.Source, S.Source);
  EXPECT_EQ(Back.Mode, S.Mode);
  EXPECT_EQ(Back.LoopVariance, S.LoopVariance);
  EXPECT_EQ(Back.OnBadProfile, S.OnBadProfile);
  EXPECT_EQ(Back.Runs, S.Runs);
  EXPECT_EQ(Back.ProfileImage, S.ProfileImage);
  EXPECT_EQ(Back.Saturated, S.Saturated);
  EXPECT_EQ(Back.Quarantined, S.Quarantined);
  ASSERT_EQ(Back.External.size(), 1u);
  EXPECT_EQ(Back.External[0].Function, "leaf");
  EXPECT_EQ(Back.External[0].Conds[0].Total, 128.0);
}

TEST(DurableSnapshot, DetectsEveryByteCorruptionAndEveryTruncation) {
  std::vector<uint8_t> Image = encodeSnapshot(makeState(), 41);
  DurableSessionState Back;
  uint64_t Watermark = 0;
  std::string Error;
  for (size_t I = 0; I < Image.size(); ++I) {
    std::vector<uint8_t> Bad = Image;
    Bad[I] ^= 0x5A;
    EXPECT_FALSE(
        decodeSnapshot(Bad.data(), Bad.size(), Back, Watermark, Error))
        << "corrupt byte " << I << " went undetected";
  }
  for (size_t Len = 0; Len < Image.size(); ++Len)
    EXPECT_FALSE(decodeSnapshot(Image.data(), Len, Back, Watermark, Error))
        << "truncation to " << Len << " bytes went undetected";
}

//===--- state store ------------------------------------------------------===//

TEST(StateStore, RecoversSnapshotsAndQuarantinesTheCorruptOne) {
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Recovered;
  {
    auto Store =
        StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    DurableSessionState A = makeState();
    DurableSessionState B = makeState();
    B.Name = "s1";
    B.Runs = 9;
    ASSERT_TRUE(Store->writeSnapshot(A, 3, Error)) << Error;
    ASSERT_TRUE(Store->writeSnapshot(B, 3, Error)) << Error;
    ASSERT_NE(Store->journal().append(makeFold(), Error), 0u) << Error;
  }

  // Corrupt s1's snapshot mid-file.
  std::string BadPath = Dir.Path + "/" + snapshotFileName("s1");
  std::vector<uint8_t> Bytes = readFileBytes(BadPath);
  ASSERT_GT(Bytes.size(), 20u);
  Bytes[Bytes.size() / 2] ^= 0xFF;
  writeFileBytes(BadPath, Bytes.data(), Bytes.size());

  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
  ASSERT_TRUE(Store) << Error;
  ASSERT_EQ(Recovered.Snapshots.size(), 1u);
  EXPECT_EQ(Recovered.Snapshots[0].State.Name, "s0");
  EXPECT_EQ(Recovered.Snapshots[0].Watermark, 3u);
  ASSERT_EQ(Recovered.SnapshotDiagnostics.size(), 1u);
  EXPECT_FALSE(fileExists(BadPath));
  EXPECT_TRUE(fileExists(BadPath + ".corrupt"));
  ASSERT_EQ(Recovered.Records.size(), 1u);
  expectRecordsEqual(Recovered.Records[0], makeFold());
}

TEST(StateStore, PruneRemovesOnlyNonResidentSnapshots) {
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Recovered;
  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
  ASSERT_TRUE(Store) << Error;
  DurableSessionState A = makeState();
  DurableSessionState B = makeState();
  B.Name = "evicted";
  ASSERT_TRUE(Store->writeSnapshot(A, 1, Error)) << Error;
  ASSERT_TRUE(Store->writeSnapshot(B, 1, Error)) << Error;
  ASSERT_TRUE(Store->pruneSnapshotsExcept({"s0"}, Error)) << Error;
  EXPECT_TRUE(fileExists(Dir.Path + "/" + snapshotFileName("s0")));
  EXPECT_FALSE(fileExists(Dir.Path + "/" + snapshotFileName("evicted")));
}

//===--- ServeCore restore ------------------------------------------------===//

namespace {

/// Same shape as serve_test's TinySource: calls, loops, a branch.
const char *TinySource = R"(      program main
      integer i, n
      n = 16
      do 10 i = 1, n
        call leaf(i)
 10   continue
      end
      subroutine leaf(k)
      integer k, j
      real s
      s = 0
      do 20 j = 1, 4
        if (s .gt. 10) then
          s = s - 10
        else
          s = s + j * k
        endif
 20   continue
      end
)";

WireMessage makeRequest(const std::string &Verb, const std::string &Session) {
  WireMessage M;
  M.Verb = Verb;
  if (!Session.empty())
    M.Params["session"] = Session;
  return M;
}

/// Appends one 16-byte little-endian stream record to \p Body.
void appendStreamRecord(std::string &Body, uint32_t FuncIdx, uint32_t CondIdx,
                        double Delta) {
  auto PutU32 = [&Body](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Body.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  PutU32(FuncIdx);
  PutU32(CondIdx);
  uint64_t Bits;
  std::memcpy(&Bits, &Delta, sizeof(Bits));
  for (int I = 0; I < 8; ++I)
    Body.push_back(static_cast<char>((Bits >> (8 * I)) & 0xff));
}

/// The full-precision estimate answer for (session, function): the verb
/// plus the params recovery must reproduce byte-for-byte.
std::vector<std::string> estimateFingerprint(ServeCore &Core,
                                             const std::string &Session,
                                             const std::string &Function) {
  WireMessage Req = makeRequest("estimate", Session);
  if (!Function.empty())
    Req.Params["function"] = Function;
  WireMessage Resp = Core.handle(Req);
  std::vector<std::string> Fp;
  Fp.push_back(Resp.Verb);
  for (const char *Key : {"time", "var", "stddev", "code"})
    Fp.push_back(Resp.param(Key));
  return Fp;
}

} // namespace

TEST(ServeCoreDurable, EveryJournalPrefixRestoresTheReferenceEstimates) {
  // Drive a real daemon core against a store, remembering the estimate
  // fingerprint after every journaled mutation. Then cut the journal at
  // EVERY byte length, restore a fresh core from the prefix, and demand
  // the estimates match the reference at that prefix byte-for-byte —
  // including cuts inside a frame (the torn final record costs itself,
  // never the prefix before it).
  TempDir DirA;
  // Fingerprints per journal record count: RefAt[N] is the expected
  // answers once N records are durable.
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  auto Fingerprints = [](ServeCore &Core) {
    std::vector<std::vector<std::string>> Fp;
    Fp.push_back(estimateFingerprint(Core, "s0", ""));
    Fp.push_back(estimateFingerprint(Core, "s0", "leaf"));
    return Fp;
  };

  {
    std::string Error;
    StateStore::Recovery Recovered;
    auto Store =
        StateStore::open(DirA.Path, FsyncPolicy::Never, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Core(Opts);
    RefAt.push_back(Fingerprints(Core)); // 0 records: no sessions.

    WireMessage Load = makeRequest("load-program", "s0");
    Load.Body = TinySource;
    WireMessage Resp = Core.handle(Load);
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    ASSERT_EQ(Store->journal().lastLsn(), 1u); // SessionCreate
    RefAt.push_back(Fingerprints(Core));

    Resp = Core.handle(makeRequest("run", "s0"));
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    ASSERT_EQ(Store->journal().lastLsn(), 2u); // RunExec
    RefAt.push_back(Fingerprints(Core));

    WireMessage Ing = makeRequest("stream-deltas", "s0");
    Ing.Params["describe"] = "1";
    Resp = Core.handle(Ing);
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    unsigned N = static_cast<unsigned>(std::stoul(Resp.param("functions")));
    unsigned Leaf = N;
    for (unsigned I = 0; I < N; ++I)
      if (Resp.param("function." + std::to_string(I)) == "leaf")
        Leaf = I;
    ASSERT_LT(Leaf, N);
    WireMessage Deltas = makeRequest("stream-deltas", "s0");
    for (int I = 0; I < 8; ++I)
      appendStreamRecord(Deltas.Body, Leaf, 0, 2.0);
    Deltas.Params["flush"] = "1";
    Resp = Core.handle(Deltas);
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    ASSERT_EQ(Store->journal().lastLsn(), 3u); // EpochFold
    RefAt.push_back(Fingerprints(Core));

    WireMessage Cap = Core.handle(makeRequest("capture-profile", "s0"));
    ASSERT_EQ(Cap.Verb, "ok") << Cap.param("message");
    WireMessage Re = makeRequest("ingest-profile", "s0");
    Re.Body = Cap.Body;
    Resp = Core.handle(Re);
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    ASSERT_EQ(Store->journal().lastLsn(), 4u); // ProfileIngest
    RefAt.push_back(Fingerprints(Core));

    Resp = Core.handle(makeRequest("run", "s0"));
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    ASSERT_EQ(Store->journal().lastLsn(), 5u); // RunExec
    RefAt.push_back(Fingerprints(Core));
  }

  std::vector<uint8_t> Full = readFileBytes(DirA.Path + "/journal.ptwj");
  ASSERT_GT(Full.size(), 16u);

  TempDir DirB;
  std::string CutPath = DirB.Path + "/journal.ptwj";
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    SCOPED_TRACE("prefix length " + std::to_string(Len));
    ::unlink(CutPath.c_str());
    ::unlink((CutPath + ".quarantine").c_str());
    writeFileBytes(CutPath, Full.data(), Len);

    std::string Error;
    StateStore::Recovery Recovered;
    auto Store =
        StateStore::open(DirB.Path, FsyncPolicy::Never, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    size_t R = Recovered.Records.size();
    ASSERT_LT(R, RefAt.size());

    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Core(Opts);
    ServeCore::RestoreReport RR;
    Core.restore(Recovered, RR);
    EXPECT_EQ(RR.RecordsReplayed, R);
    EXPECT_TRUE(RR.Diagnostics.empty())
        << (RR.Diagnostics.empty() ? "" : RR.Diagnostics.front());
    EXPECT_EQ(Core.sessionCount(), R == 0 ? 0u : 1u);
    EXPECT_EQ(Fingerprints(Core), RefAt[R]);
  }
}

TEST(ServeCoreDurable, CheckpointThenMoreTrafficRecoversAcrossRestart) {
  TempDir Dir;
  std::vector<std::vector<std::string>> Expected;
  {
    std::string Error;
    StateStore::Recovery Recovered;
    auto Store =
        StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Core(Opts);

    WireMessage Load = makeRequest("load-program", "s0");
    Load.Body = TinySource;
    ASSERT_EQ(Core.handle(Load).Verb, "ok");
    ASSERT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");

    // The checkpoint verb snapshots and rotates.
    WireMessage Ck = Core.handle(makeRequest("checkpoint", ""));
    ASSERT_EQ(Ck.Verb, "ok") << Ck.param("message");
    EXPECT_TRUE(fileExists(Dir.Path + "/" + snapshotFileName("s0")));
    EXPECT_EQ(Store->journal().lastLsn(), 2u); // LSNs survive the rotation.
    EXPECT_EQ(Store->journal().sizeBytes(), 16u);

    // Post-checkpoint traffic lands in the fresh journal.
    WireMessage Run2 = makeRequest("run", "s0");
    Run2.Params["runs"] = "2";
    ASSERT_EQ(Core.handle(Run2).Verb, "ok");
    EXPECT_EQ(Store->journal().lastLsn(), 3u);

    Expected.push_back(estimateFingerprint(Core, "s0", ""));
    Expected.push_back(estimateFingerprint(Core, "s0", "leaf"));
  }

  std::string Error;
  StateStore::Recovery Recovered;
  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
  ASSERT_TRUE(Store) << Error;
  EXPECT_EQ(Recovered.JournalReport.FirstLsn, 3u);
  ASSERT_EQ(Recovered.Snapshots.size(), 1u);
  EXPECT_EQ(Recovered.Snapshots[0].Watermark, 2u);

  ServeOptions Opts;
  Opts.Store = Store.get();
  ServeCore Core(Opts);
  ServeCore::RestoreReport RR;
  Core.restore(Recovered, RR);
  EXPECT_EQ(RR.SessionsRestored, 1u);
  EXPECT_EQ(RR.RecordsReplayed, 1u); // Only the post-checkpoint RunExec.
  EXPECT_EQ(estimateFingerprint(Core, "s0", ""), Expected[0]);
  EXPECT_EQ(estimateFingerprint(Core, "s0", "leaf"), Expected[1]);
}

TEST(ServeCoreDurable, EvictedSessionStaysDeadAcrossRestart) {
  TempDir Dir;
  {
    std::string Error;
    StateStore::Recovery Recovered;
    auto Store =
        StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    ServeOptions Opts;
    Opts.Store = Store.get();
    Opts.MaxSessions = 1;
    ServeCore Core(Opts);
    for (const char *Name : {"s0", "s1"}) {
      WireMessage Load = makeRequest("load-program", Name);
      Load.Body = TinySource;
      ASSERT_EQ(Core.handle(Load).Verb, "ok");
    }
    EXPECT_EQ(Core.sessionCount(), 1u); // s0 was evicted by s1.
  }

  std::string Error;
  StateStore::Recovery Recovered;
  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
  ASSERT_TRUE(Store) << Error;
  ServeOptions Opts;
  Opts.Store = Store.get();
  Opts.MaxSessions = 1;
  ServeCore Core(Opts);
  ServeCore::RestoreReport RR;
  Core.restore(Recovered, RR);
  EXPECT_EQ(Core.sessionCount(), 1u);
  EXPECT_EQ(Core.handle(makeRequest("estimate", "s1")).Verb, "ok");
  WireMessage Dead = Core.handle(makeRequest("estimate", "s0"));
  EXPECT_EQ(Dead.Verb, "error");
  EXPECT_EQ(Dead.param("code"), "unknown-session");
}

TEST(ServeCoreDurable, SaturationMarksSurviveRestartAndRecheckpoint) {
  // A SaturationMark in the journal (and a Saturated list in a snapshot)
  // must restore the lower-bound diagnostic: the obs counter reappears
  // and the next checkpoint's snapshot carries the mark forward.
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Recovered;
  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Always, Recovered, Error);
  ASSERT_TRUE(Store) << Error;

  StateStore::Recovery Synthetic;
  {
    DurableRecord Create;
    Create.Type = RecordType::SessionCreate;
    Create.Lsn = 1;
    Create.Session = "s0";
    Create.Source = TinySource;
    Create.Mode = 3; // Smart
    Synthetic.Records.push_back(Create);
    DurableRecord Mark;
    Mark.Type = RecordType::SaturationMark;
    Mark.Lsn = 2;
    Mark.Session = "s0";
    Mark.FunctionName = "leaf";
    Synthetic.Records.push_back(Mark);
  }

  ObsRegistry Obs;
  ServeOptions Opts;
  Opts.Store = Store.get();
  Opts.Obs = &Obs;
  ServeCore Core(Opts);
  ServeCore::RestoreReport RR;
  Core.restore(Synthetic, RR);
  ASSERT_EQ(Core.sessionCount(), 1u);
  EXPECT_TRUE(RR.Diagnostics.empty())
      << (RR.Diagnostics.empty() ? "" : RR.Diagnostics.front());
  // The restored mark re-raised the saturation diagnostic.
  EXPECT_EQ(Obs.counterValue("session.saturated_functions"), 1u);

  // And a checkpoint rolls it into the snapshot, so it survives a SECOND
  // restart through the snapshot path too.
  ASSERT_TRUE(Core.checkpoint(Error)) << Error;
  DurableSessionState Snap;
  uint64_t Watermark = 0;
  ASSERT_TRUE(readSnapshotFile(Dir.Path + "/" + snapshotFileName("s0"), Snap,
                               Watermark, Error))
      << Error;
  ASSERT_EQ(Snap.Saturated.size(), 1u);
  EXPECT_EQ(Snap.Saturated[0], "leaf");

  ObsRegistry Obs2;
  ServeOptions Opts2;
  Opts2.Obs = &Obs2;
  ServeCore Core2(Opts2);
  StateStore::Recovery FromSnap;
  StateStore::RecoveredSession RS;
  RS.State = Snap;
  RS.Watermark = Watermark;
  FromSnap.Snapshots.push_back(RS);
  ServeCore::RestoreReport RR2;
  Core2.restore(FromSnap, RR2);
  ASSERT_EQ(Core2.sessionCount(), 1u);
  EXPECT_EQ(Obs2.counterValue("session.saturated_functions"), 1u);
}
