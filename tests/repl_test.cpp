//===--- tests/repl_test.cpp - Warm-standby replication tests -------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for journal shipping and the warm standby: the journal's
/// replication primitives (readFrames/appendRaw/resetTo) round-trip
/// byte-identically and reject every truncation, a read-only ServeCore
/// refuses exactly the mutating verbs, bootstrap capture/adopt reproduces
/// estimates, a socketpair-connected shipper/standby pair catches up live
/// (including across a rotation-forced bootstrap) and promotes into a
/// writable primary whose answers match the reference byte-for-byte, the
/// standby's journal cut at EVERY byte length restores the reference
/// estimates or quarantines only the torn tail, injected crashes at the
/// standby apply path leave a recoverable store, and the adaptive flusher
/// seals a hot stream epoch before the timer cadence. The ubsan preset
/// reruns this binary to drive the frame validators over garbled input.
///
//===----------------------------------------------------------------------===//

#include "durable/Journal.h"
#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "repl/Replication.h"
#include "repl/Standby.h"
#include "serve/Server.h"
#include "serve/Wire.h"
#include "support/FaultInjection.h"
#include "support/Retry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::durable;
using namespace ptran::serve;
using namespace ptran::repl;

namespace {

//===--- helpers ----------------------------------------------------------===//

/// A fresh directory under /tmp, recursively removed on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/ptran-repl-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = Buf;
  }
  ~TempDir() {
    DIR *D = ::opendir(Path.c_str());
    if (D) {
      while (dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Path + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
};

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Out;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Out;
  struct stat St;
  if (::fstat(Fd, &St) == 0) {
    Out.resize(static_cast<size_t>(St.st_size));
    size_t Got = 0;
    while (Got < Out.size()) {
      ssize_t N = ::read(Fd, Out.data() + Got, Out.size() - Got);
      if (N <= 0)
        break;
      Got += static_cast<size_t>(N);
    }
    Out.resize(Got);
  }
  ::close(Fd);
  return Out;
}

void writeFileBytes(const std::string &Path, const uint8_t *Data,
                    size_t Len) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(Fd, 0);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Data + Off, Len - Off);
    ASSERT_GT(N, 0);
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
}

/// Polls \p Cond every few ms until it holds or \p Ms elapse.
bool waitFor(const std::function<bool()> &Cond, int Ms = 10000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Cond())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Cond();
}

/// Same shape as durable_test's TinySource: calls, loops, a branch.
const char *TinySource = R"(      program main
      integer i, n
      n = 16
      do 10 i = 1, n
        call leaf(i)
 10   continue
      end
      subroutine leaf(k)
      integer k, j
      real s
      s = 0
      do 20 j = 1, 4
        if (s .gt. 10) then
          s = s - 10
        else
          s = s + j * k
        endif
 20   continue
      end
)";

WireMessage makeRequest(const std::string &Verb, const std::string &Session) {
  WireMessage M;
  M.Verb = Verb;
  if (!Session.empty())
    M.Params["session"] = Session;
  return M;
}

/// Appends one 16-byte little-endian stream record to \p Body.
void appendStreamRecord(std::string &Body, uint32_t FuncIdx, uint32_t CondIdx,
                        double Delta) {
  auto PutU32 = [&Body](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Body.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  PutU32(FuncIdx);
  PutU32(CondIdx);
  uint64_t Bits;
  std::memcpy(&Bits, &Delta, sizeof(Bits));
  for (int I = 0; I < 8; ++I)
    Body.push_back(static_cast<char>((Bits >> (8 * I)) & 0xff));
}

/// The full-precision estimate answer for (session, function): what two
/// daemons whose state agrees must reproduce byte-for-byte.
std::vector<std::string> estimateFingerprint(ServeCore &Core,
                                             const std::string &Session,
                                             const std::string &Function) {
  WireMessage Req = makeRequest("estimate", Session);
  if (!Function.empty())
    Req.Params["function"] = Function;
  WireMessage Resp = Core.handle(Req);
  std::vector<std::string> Fp;
  Fp.push_back(Resp.Verb);
  for (const char *Key : {"time", "var", "stddev", "code"})
    Fp.push_back(Resp.param(Key));
  return Fp;
}

std::vector<std::vector<std::string>> fingerprints(ServeCore &Core) {
  std::vector<std::vector<std::string>> Fp;
  Fp.push_back(estimateFingerprint(Core, "s0", ""));
  Fp.push_back(estimateFingerprint(Core, "s0", "leaf"));
  return Fp;
}

/// Finds the stream cell index of function "leaf" via a describe request.
unsigned leafIndex(ServeCore &Core) {
  WireMessage Req = makeRequest("stream-deltas", "s0");
  Req.Params["describe"] = "1";
  WireMessage Resp = Core.handle(Req);
  EXPECT_EQ(Resp.Verb, "ok") << Resp.param("message");
  unsigned N = static_cast<unsigned>(std::stoul(Resp.param("functions")));
  for (unsigned I = 0; I < N; ++I)
    if (Resp.param("function." + std::to_string(I)) == "leaf")
      return I;
  ADD_FAILURE() << "no leaf function in describe";
  return 0;
}

/// Drives the standard journaled mutation sequence (5 records) against
/// \p Core, recording the fingerprint after each into \p RefAt (which
/// starts with the 0-record state).
void driveReference(ServeCore &Core, DeltaJournal &Journal,
                    std::vector<std::vector<std::vector<std::string>>> &RefAt) {
  RefAt.push_back(fingerprints(Core));

  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  WireMessage Resp = Core.handle(Load);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  ASSERT_EQ(Journal.lastLsn(), 1u); // SessionCreate
  RefAt.push_back(fingerprints(Core));

  Resp = Core.handle(makeRequest("run", "s0"));
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  ASSERT_EQ(Journal.lastLsn(), 2u); // RunExec
  RefAt.push_back(fingerprints(Core));

  unsigned Leaf = leafIndex(Core);
  WireMessage Deltas = makeRequest("stream-deltas", "s0");
  for (int I = 0; I < 8; ++I)
    appendStreamRecord(Deltas.Body, Leaf, 0, 2.0);
  Deltas.Params["flush"] = "1";
  Resp = Core.handle(Deltas);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  ASSERT_EQ(Journal.lastLsn(), 3u); // EpochFold
  RefAt.push_back(fingerprints(Core));

  WireMessage Cap = Core.handle(makeRequest("capture-profile", "s0"));
  ASSERT_EQ(Cap.Verb, "ok") << Cap.param("message");
  WireMessage Re = makeRequest("ingest-profile", "s0");
  Re.Body = Cap.Body;
  Resp = Core.handle(Re);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  ASSERT_EQ(Journal.lastLsn(), 4u); // ProfileIngest
  RefAt.push_back(fingerprints(Core));

  Resp = Core.handle(makeRequest("run", "s0"));
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  ASSERT_EQ(Journal.lastLsn(), 5u); // RunExec
  RefAt.push_back(fingerprints(Core));
}

/// Forks, runs \p Child, and expects it to die at an injected crash point
/// (_exit(42)). A child that survives exits 7 and fails the expectation.
void expectInjectedCrash(const std::function<void()> &Child) {
  ::fflush(nullptr);
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    Child();
    ::_exit(7);
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 42)
      << "child did not die at the injected crash point";
}

} // namespace

//===--- ack-mode parsing --------------------------------------------------===//

TEST(AckMode, ParsesTheThreeLevelsAndRejectsGarbage) {
  EXPECT_EQ(parseAckMode("none"), AckMode::None);
  EXPECT_EQ(parseAckMode("batch"), AckMode::Batch);
  EXPECT_EQ(parseAckMode("always"), AckMode::Always);
  EXPECT_EQ(parseAckMode("ALWAYS"), AckMode::Always); // Case-insensitive.
  EXPECT_FALSE(parseAckMode("").has_value());
  EXPECT_FALSE(parseAckMode("sometimes").has_value());
  EXPECT_STREQ(ackModeName(AckMode::None), "none");
  EXPECT_STREQ(ackModeName(AckMode::Batch), "batch");
  EXPECT_STREQ(ackModeName(AckMode::Always), "always");
}

//===--- journal replication primitives -----------------------------------===//

namespace {

DurableRecord makeMark(const std::string &Session) {
  DurableRecord R;
  R.Type = RecordType::SaturationMark;
  R.Session = Session;
  return R;
}

} // namespace

TEST(JournalShipping, ReadFramesRoundTripsByteIdenticallyThroughAppendRaw) {
  TempDir DirA, DirB;
  std::string PathA = DirA.Path + "/journal.ptwj";
  std::string PathB = DirB.Path + "/journal.ptwj";
  std::string Error;
  DeltaJournal::OpenReport Report;
  auto A = DeltaJournal::open(PathA, FsyncPolicy::Always, Report, nullptr,
                              Error);
  ASSERT_TRUE(A) << Error;
  for (uint64_t I = 1; I <= 3; ++I)
    ASSERT_EQ(A->append(makeMark("s" + std::to_string(I)), Error), I);

  DeltaJournal::ReadCursor Cursor;
  std::vector<uint8_t> Raw;
  uint32_t Count = 0;
  ASSERT_EQ(A->readFrames(Cursor, 1 << 20, 512, Raw, Count, Error),
            DeltaJournal::ReadResult::Ok)
      << Error;
  EXPECT_EQ(Count, 3u);
  EXPECT_EQ(Cursor.NextLsn, 4u);
  EXPECT_FALSE(Raw.empty());

  // The cursor is now at the tail.
  std::vector<uint8_t> More;
  uint32_t MoreCount = 0;
  EXPECT_EQ(A->readFrames(Cursor, 1 << 20, 512, More, MoreCount, Error),
            DeltaJournal::ReadResult::AtEnd);

  // Replaying the raw frames into a fresh journal reproduces the file
  // byte-for-byte — the property that makes a promoted standby's journal
  // interchangeable with the primary's.
  auto B = DeltaJournal::open(PathB, FsyncPolicy::Always, Report, nullptr,
                              Error);
  ASSERT_TRUE(B) << Error;
  std::vector<DurableRecord> Records;
  ASSERT_TRUE(B->appendRaw(Raw.data(), Raw.size(), 1, 3, &Records, Error))
      << Error;
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[0].Lsn, 1u);
  EXPECT_EQ(Records[2].Lsn, 3u);
  EXPECT_EQ(B->nextLsn(), 4u);
  EXPECT_EQ(readFileBytes(PathA), readFileBytes(PathB));

  // A batch cap slices the stream without losing records.
  DeltaJournal::ReadCursor Capped;
  Raw.clear();
  ASSERT_EQ(A->readFrames(Capped, 1 << 20, 2, Raw, Count, Error),
            DeltaJournal::ReadResult::Ok);
  EXPECT_EQ(Count, 2u);
  EXPECT_EQ(Capped.NextLsn, 3u);
  Raw.clear();
  ASSERT_EQ(A->readFrames(Capped, 1 << 20, 2, Raw, Count, Error),
            DeltaJournal::ReadResult::Ok);
  EXPECT_EQ(Count, 1u);
}

TEST(JournalShipping, RotationMovesCursorsToRotatedAndResetAdoptsTheBase) {
  TempDir Dir;
  std::string Path = Dir.Path + "/journal.ptwj";
  std::string Error;
  DeltaJournal::OpenReport Report;
  auto J =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, nullptr, Error);
  ASSERT_TRUE(J) << Error;
  ASSERT_EQ(J->append(makeMark("s0"), Error), 1u);
  ASSERT_EQ(J->append(makeMark("s0"), Error), 2u);
  ASSERT_TRUE(J->rotate(Error)) << Error;

  // A cursor still wanting LSN 1 finds the records gone: bootstrap time.
  DeltaJournal::ReadCursor Stale;
  std::vector<uint8_t> Raw;
  uint32_t Count = 0;
  EXPECT_EQ(J->readFrames(Stale, 1 << 20, 512, Raw, Count, Error),
            DeltaJournal::ReadResult::Rotated);

  // resetTo adopts a foreign LSN base (the standby adopting the primary's
  // snapshot watermark), discarding local records.
  ASSERT_TRUE(J->resetTo(101, Error)) << Error;
  EXPECT_EQ(J->nextLsn(), 101u);
  EXPECT_EQ(J->sizeBytes(), 16u);
  EXPECT_EQ(J->append(makeMark("s0"), Error), 101u);
  J.reset();

  std::vector<DurableRecord> Records;
  auto J2 =
      DeltaJournal::open(Path, FsyncPolicy::Always, Report, &Records, Error);
  ASSERT_TRUE(J2) << Error;
  EXPECT_EQ(Report.FirstLsn, 101u);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Lsn, 101u);
}

TEST(JournalShipping, AppendRawRejectsEveryTruncationWithoutWriting) {
  // Validation property (rerun under UBSan): a frame batch cut at every
  // byte length, a wrong LSN base, a wrong count, and a flipped body byte
  // must all be rejected before ANY byte lands in the journal.
  TempDir DirA;
  std::string Error;
  DeltaJournal::OpenReport Report;
  auto A = DeltaJournal::open(DirA.Path + "/journal.ptwj",
                              FsyncPolicy::Always, Report, nullptr, Error);
  ASSERT_TRUE(A) << Error;
  for (uint64_t I = 1; I <= 3; ++I)
    ASSERT_EQ(A->append(makeMark("sess-" + std::to_string(I)), Error), I);
  DeltaJournal::ReadCursor Cursor;
  std::vector<uint8_t> Raw;
  uint32_t Count = 0;
  ASSERT_EQ(A->readFrames(Cursor, 1 << 20, 512, Raw, Count, Error),
            DeltaJournal::ReadResult::Ok);
  ASSERT_EQ(Count, 3u);

  TempDir DirB;
  auto B = DeltaJournal::open(DirB.Path + "/journal.ptwj",
                              FsyncPolicy::Never, Report, nullptr, Error);
  ASSERT_TRUE(B) << Error;
  for (size_t Len = 0; Len < Raw.size(); ++Len) {
    std::string Err;
    EXPECT_FALSE(B->appendRaw(Raw.data(), Len, 1, 3, nullptr, Err))
        << "prefix length " << Len << " was accepted";
    EXPECT_EQ(B->nextLsn(), 1u);
    EXPECT_EQ(B->sizeBytes(), 16u);
  }
  std::string Err;
  EXPECT_FALSE(B->appendRaw(Raw.data(), Raw.size(), 2, 3, nullptr, Err));
  EXPECT_FALSE(B->appendRaw(Raw.data(), Raw.size(), 1, 2, nullptr, Err));
  std::vector<uint8_t> Flipped = Raw;
  Flipped[Flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(
      B->appendRaw(Flipped.data(), Flipped.size(), 1, 3, nullptr, Err));
  EXPECT_EQ(B->nextLsn(), 1u);

  // The pristine batch still lands afterwards: rejection left no residue.
  EXPECT_TRUE(B->appendRaw(Raw.data(), Raw.size(), 1, 3, nullptr, Err))
      << Err;
  EXPECT_EQ(B->nextLsn(), 4u);
}

//===--- read-only core + promote verb -------------------------------------===//

TEST(ReadOnlyCore, RefusesExactlyTheMutatingVerbs) {
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Recovered;
  auto Store =
      StateStore::open(Dir.Path, FsyncPolicy::Never, Recovered, Error);
  ASSERT_TRUE(Store) << Error;
  ObsRegistry Obs;
  ServeOptions Opts;
  Opts.Store = Store.get();
  Opts.Obs = &Obs;
  ServeCore Core(Opts);

  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  ASSERT_EQ(Core.handle(Load).Verb, "ok");
  ASSERT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");
  uint64_t LsnBefore = Store->journal().lastLsn();

  Core.setReadOnly(true);
  for (const char *Verb :
       {"load-program", "run", "ingest-profile", "checkpoint"}) {
    WireMessage Resp = Core.handle(makeRequest(Verb, "s0"));
    EXPECT_EQ(Resp.Verb, "error") << Verb;
    EXPECT_EQ(Resp.param("code"), "read-only") << Verb;
  }
  WireMessage Append = makeRequest("stream-deltas", "s0");
  appendStreamRecord(Append.Body, 0, 0, 1.0);
  EXPECT_EQ(Core.handle(Append).param("code"), "read-only");

  // Reads still flow: estimate, stats, and the describe form of
  // stream-deltas (it only serves the cell-address table).
  EXPECT_EQ(Core.handle(makeRequest("estimate", "s0")).Verb, "ok");
  EXPECT_EQ(Core.handle(makeRequest("stats", "")).Verb, "ok");
  WireMessage Describe = makeRequest("stream-deltas", "s0");
  Describe.Params["describe"] = "1";
  EXPECT_EQ(Core.handle(Describe).Verb, "ok");

  EXPECT_EQ(Store->journal().lastLsn(), LsnBefore);
  EXPECT_GE(Obs.counterValue("serve.read-only-rejects"), 5u);

  Core.setReadOnly(false);
  EXPECT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");
}

TEST(ReadOnlyCore, PromoteVerbRoutesThroughTheCallback) {
  ServeOptions NoPromote;
  ServeCore Plain(NoPromote);
  WireMessage Resp = Plain.handle(makeRequest("promote", ""));
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");

  bool Called = false;
  ServeOptions WithPromote;
  WithPromote.Promote = [&Called](std::string &) {
    Called = true;
    return true;
  };
  ServeCore Standby(WithPromote);
  Resp = Standby.handle(makeRequest("promote", ""));
  EXPECT_EQ(Resp.Verb, "ok");
  EXPECT_EQ(Resp.param("role"), "primary");
  EXPECT_TRUE(Called);

  ServeOptions Failing;
  Failing.Promote = [](std::string &Err) {
    Err = "mid-bootstrap";
    return false;
  };
  ServeCore Refusing(Failing);
  Resp = Refusing.handle(makeRequest("promote", ""));
  EXPECT_EQ(Resp.param("code"), "promote-failed");
}

//===--- bootstrap capture/adopt -------------------------------------------===//

TEST(Bootstrap, CaptureAdoptRoundTripReproducesEstimates) {
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA, RecB;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  auto StoreB = StateStore::open(DirB.Path, FsyncPolicy::Never, RecB, Error);
  ASSERT_TRUE(StoreA && StoreB) << Error;

  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);

  ServeCore::BootstrapCapture Capture;
  ASSERT_TRUE(A.captureBootstrap(Capture, Error)) << Error;
  EXPECT_EQ(Capture.Watermark, 5u);
  ASSERT_EQ(Capture.Snapshots.size(), 1u);
  EXPECT_EQ(Capture.Snapshots[0].Session, "s0");

  ServeOptions OptsB;
  OptsB.Store = StoreB.get();
  ServeCore B(OptsB);
  std::vector<std::string> Diagnostics;
  ASSERT_TRUE(
      B.adoptSnapshotImage(Capture.Snapshots[0].Image, Diagnostics, Error))
      << Error;
  EXPECT_TRUE(Diagnostics.empty());
  ASSERT_TRUE(StoreB->journal().resetTo(Capture.Watermark + 1, Error))
      << Error;

  EXPECT_EQ(fingerprints(B), RefAt.back());
  EXPECT_EQ(B.sessionCount(), 1u);

  // The adopted image was persisted BEFORE registration: a fresh store
  // restores the session without ever seeing a journal record.
  B.clearAllSessions();
  EXPECT_EQ(B.sessionCount(), 0u);
  StateStore::Recovery RecB2;
  auto StoreB2 =
      StateStore::open(DirB.Path, FsyncPolicy::Never, RecB2, Error);
  ASSERT_TRUE(StoreB2) << Error;
  ServeOptions OptsB2;
  OptsB2.Store = StoreB2.get();
  ServeCore B2(OptsB2);
  ServeCore::RestoreReport RR;
  B2.restore(RecB2, RR);
  EXPECT_EQ(RR.SessionsRestored, 1u);
  EXPECT_EQ(fingerprints(B2), RefAt.back());
}

//===--- applyReplicatedBatch ----------------------------------------------===//

TEST(ApplyBatch, ShippedFramesReplayToTheReferenceEstimates) {
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA, RecB;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  auto StoreB = StateStore::open(DirB.Path, FsyncPolicy::Never, RecB, Error);
  ASSERT_TRUE(StoreA && StoreB) << Error;

  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);

  ServeOptions OptsB;
  OptsB.Store = StoreB.get();
  ServeCore B(OptsB);
  B.setReadOnly(true);

  // Apply the journal one record per batch, checking the standby tracks
  // the reference at every step.
  DeltaJournal::ReadCursor Cursor;
  for (size_t Step = 1; Step <= 5; ++Step) {
    std::vector<uint8_t> Raw;
    uint32_t Count = 0;
    ASSERT_EQ(StoreA->journal().readFrames(Cursor, 1 << 20, 1, Raw, Count,
                                           Error),
              DeltaJournal::ReadResult::Ok)
        << Error;
    ASSERT_EQ(Count, 1u);
    uint64_t Applied = 0;
    std::vector<std::string> Diagnostics;
    ASSERT_TRUE(B.applyReplicatedBatch(Raw.data(), Raw.size(), Step, 1,
                                       /*Sync=*/false, Applied, Diagnostics,
                                       Error))
        << Error;
    EXPECT_EQ(Applied, Step);
    EXPECT_TRUE(Diagnostics.empty())
        << (Diagnostics.empty() ? "" : Diagnostics.front());
    EXPECT_EQ(fingerprints(B), RefAt[Step]) << "after record " << Step;
  }
  // Both journals now hold the identical record run.
  EXPECT_EQ(readFileBytes(DirA.Path + "/journal.ptwj"),
            readFileBytes(DirB.Path + "/journal.ptwj"));
}

//===--- shipper hooks -----------------------------------------------------===//

TEST(Shipper, WaitDurableDegradesWithoutSubscribers) {
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Rec;
  auto Store = StateStore::open(Dir.Path, FsyncPolicy::Never, Rec, Error);
  ASSERT_TRUE(Store) << Error;
  JournalShipper::Options O;
  O.Store = Store.get();
  O.Ack = AckMode::Always;
  O.AckWaitMs = 50;
  JournalShipper Shipper(O);
  EXPECT_EQ(Shipper.minSubscriberLsn(), ~0ull);
  // No standby is subscribed: blocking a mutation forever on a durability
  // promise nobody can fulfill would wedge the primary, so the wait
  // degrades to an immediate success.
  auto Start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Shipper.waitDurable(7));
  EXPECT_LT(std::chrono::steady_clock::now() - Start,
            std::chrono::milliseconds(500));

  JournalShipper::Options N = O;
  N.Ack = AckMode::None;
  JournalShipper NoAck(N);
  EXPECT_TRUE(NoAck.waitDurable(7));
}

namespace {

struct FakeHooks : serve::ReplicationHooks {
  std::atomic<uint64_t> Min{~0ull};
  void onAppend(uint64_t) override {}
  bool waitDurable(uint64_t) override { return true; }
  uint64_t minSubscriberLsn() override { return Min.load(); }
};

} // namespace

TEST(RotationGuard, CheckpointDefersRotationWhileASubscriberLags) {
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Rec;
  auto Store = StateStore::open(Dir.Path, FsyncPolicy::Never, Rec, Error);
  ASSERT_TRUE(Store) << Error;
  FakeHooks Hooks;
  ObsRegistry Obs;
  ServeOptions Opts;
  Opts.Store = Store.get();
  Opts.Repl = &Hooks;
  Opts.Obs = &Obs;
  ServeCore Core(Opts);

  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  ASSERT_EQ(Core.handle(Load).Verb, "ok");
  ASSERT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");
  uint64_t Tail = Store->journal().lastLsn();
  ASSERT_GE(Tail, 2u);

  // A subscriber still needs LSN 1: the checkpoint must keep the journal.
  Hooks.Min.store(1);
  ASSERT_TRUE(Core.checkpoint(Error)) << Error;
  EXPECT_EQ(Obs.counterValue("repl.rotations_deferred"), 1u);
  EXPECT_EQ(Store->journal().nextLsn(), Tail + 1);
  EXPECT_GT(Store->journal().sizeBytes(), 16u); // Records still present.

  // Everyone caught up: the next checkpoint rotates as usual.
  Hooks.Min.store(~0ull);
  ASSERT_TRUE(Core.checkpoint(Error)) << Error;
  EXPECT_EQ(Store->journal().sizeBytes(), 16u);
  EXPECT_EQ(Store->journal().nextLsn(), Tail + 1);
}

//===--- live shipper <-> standby over socketpairs -------------------------===//

namespace {

/// An in-process primary endpoint: every connect() yields the client end
/// of a fresh socketpair whose server end is pumped through
/// JournalShipper::runSubscription on its own thread — exactly the
/// daemon's connection-thread arrangement, minus the listener.
struct FakePrimary {
  JournalShipper Shipper;
  std::vector<std::thread> Threads;
  std::mutex Mu;

  explicit FakePrimary(const JournalShipper::Options &O) : Shipper(O) {}
  ~FakePrimary() {
    Shipper.stop();
    std::lock_guard<std::mutex> L(Mu);
    for (std::thread &T : Threads)
      T.join();
  }

  int connect(std::string &Error) {
    int Sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) < 0) {
      Error = "socketpair failed";
      return -1;
    }
    std::lock_guard<std::mutex> L(Mu);
    Threads.emplace_back([this, Fd = Sv[0]] {
      WireMessage Sub;
      std::string Err;
      if (readFrame(Fd, Sub, Err) == 1 && Sub.Verb == "repl-subscribe")
        Shipper.runSubscription(Fd, Sub);
      ::close(Fd);
    });
    return Sv[1];
  }
};

} // namespace

TEST(LiveReplication, StandbyCatchesUpAndPromotesToTheReferenceAnswers) {
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA, RecB;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  auto StoreB = StateStore::open(DirB.Path, FsyncPolicy::Never, RecB, Error);
  ASSERT_TRUE(StoreA && StoreB) << Error;

  ObsRegistry ObsA, ObsB;
  JournalShipper::Options ShipOpts;
  ShipOpts.Store = StoreA.get();
  ShipOpts.Ack = AckMode::Batch;
  ShipOpts.Obs = &ObsA;
  FakePrimary Primary(ShipOpts);

  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  OptsA.Obs = &ObsA;
  OptsA.Repl = &Primary.Shipper;
  ServeCore A(OptsA);
  Primary.Shipper.setCore(&A);

  // Half the traffic lands before the standby exists (catch-up), half
  // after (live tail).
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  RefAt.push_back(fingerprints(A));
  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  ASSERT_EQ(A.handle(Load).Verb, "ok");
  ASSERT_EQ(A.handle(makeRequest("run", "s0")).Verb, "ok");
  ASSERT_EQ(StoreA->journal().lastLsn(), 2u);

  ServeOptions OptsB;
  OptsB.Store = StoreB.get();
  OptsB.Obs = &ObsB;
  ServeCore B(OptsB);
  StandbyReplicator::Options StandbyOpts;
  StandbyOpts.Core = &B;
  StandbyOpts.Store = StoreB.get();
  StandbyOpts.Ack = AckMode::Batch;
  StandbyOpts.Obs = &ObsB;
  StandbyOpts.Backoff =
      RetryPolicy().retries(1u << 30).baseDelay(std::chrono::milliseconds(1));
  StandbyOpts.Connect = [&Primary](std::string &Err) {
    return Primary.connect(Err);
  };
  StandbyReplicator Standby(StandbyOpts);
  ASSERT_TRUE(Standby.start(Error)) << Error;

  ASSERT_TRUE(waitFor([&] { return Standby.lastAppliedLsn() >= 2; }))
      << "standby never caught up to LSN 2 (got "
      << Standby.lastAppliedLsn() << ")";
  EXPECT_TRUE(B.isReadOnly());
  EXPECT_EQ(fingerprints(B), fingerprints(A));

  // Live tail: more primary traffic while the subscription is up.
  unsigned Leaf = leafIndex(A);
  WireMessage Deltas = makeRequest("stream-deltas", "s0");
  for (int I = 0; I < 8; ++I)
    appendStreamRecord(Deltas.Body, Leaf, 0, 2.0);
  Deltas.Params["flush"] = "1";
  ASSERT_EQ(A.handle(Deltas).Verb, "ok");
  ASSERT_EQ(A.handle(makeRequest("run", "s0")).Verb, "ok");
  uint64_t Tail = StoreA->journal().lastLsn();

  ASSERT_TRUE(waitFor([&] { return Standby.lastAppliedLsn() >= Tail; }))
      << "standby never reached the live tail " << Tail;
  EXPECT_EQ(fingerprints(B), fingerprints(A));
  // Batch mode: acks flowed back and reported the applied LSN.
  EXPECT_TRUE(waitFor(
      [&] { return ObsA.counterValue("repl.acks_received") >= 1; }));

  // The standby's journal is byte-identical to the primary's: the frames
  // crossed the wire untouched.
  EXPECT_TRUE(waitFor([&] {
    return readFileBytes(DirB.Path + "/journal.ptwj") ==
           readFileBytes(DirA.Path + "/journal.ptwj");
  }));

  // Failover: the primary "dies" (shipper stops), the standby promotes
  // and answers — and accepts writes — exactly like the primary did.
  auto RefFinal = fingerprints(A);
  Primary.Shipper.stop();
  ASSERT_TRUE(Standby.promote(Error)) << Error;
  EXPECT_TRUE(Standby.promoted());
  EXPECT_FALSE(B.isReadOnly());
  EXPECT_EQ(fingerprints(B), RefFinal);
  EXPECT_EQ(B.handle(makeRequest("run", "s0")).Verb, "ok");
  EXPECT_EQ(StoreB->journal().lastLsn(), Tail + 1);
}

TEST(LiveReplication, RotatedPrimaryBootstrapsTheStandby) {
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA, RecB;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  auto StoreB = StateStore::open(DirB.Path, FsyncPolicy::Never, RecB, Error);
  ASSERT_TRUE(StoreA && StoreB) << Error;

  ObsRegistry ObsA, ObsB;
  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  OptsA.Obs = &ObsA;
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);

  // Checkpoint + rotate BEFORE any standby exists: the journaled history
  // is gone, so a fresh subscriber can only be served by bootstrap.
  ASSERT_TRUE(A.checkpoint(Error)) << Error;
  ASSERT_EQ(StoreA->journal().sizeBytes(), 16u);

  JournalShipper::Options ShipOpts;
  ShipOpts.Store = StoreA.get();
  ShipOpts.Core = &A;
  ShipOpts.Obs = &ObsA;
  FakePrimary Primary(ShipOpts);

  ServeOptions OptsB;
  OptsB.Store = StoreB.get();
  OptsB.Obs = &ObsB;
  ServeCore B(OptsB);
  StandbyReplicator::Options StandbyOpts;
  StandbyOpts.Core = &B;
  StandbyOpts.Store = StoreB.get();
  StandbyOpts.Obs = &ObsB;
  StandbyOpts.Backoff =
      RetryPolicy().retries(1u << 30).baseDelay(std::chrono::milliseconds(1));
  StandbyOpts.Connect = [&Primary](std::string &Err) {
    return Primary.connect(Err);
  };
  StandbyReplicator Standby(StandbyOpts);
  ASSERT_TRUE(Standby.start(Error)) << Error;

  uint64_t Watermark = StoreA->journal().lastLsn();
  ASSERT_TRUE(
      waitFor([&] { return Standby.lastAppliedLsn() >= Watermark; }))
      << "standby never bootstrapped to watermark " << Watermark;
  EXPECT_EQ(fingerprints(B), RefAt.back());
  EXPECT_GE(ObsB.counterValue("repl.bootstraps_applied"), 1u);
  EXPECT_GE(ObsA.counterValue("repl.bootstraps_sent"), 1u);
  EXPECT_EQ(StoreB->journal().nextLsn(), Watermark + 1);

  // Streaming resumes at the watermark: post-bootstrap traffic arrives as
  // plain frames.
  ASSERT_EQ(A.handle(makeRequest("run", "s0")).Verb, "ok");
  ASSERT_TRUE(
      waitFor([&] { return Standby.lastAppliedLsn() >= Watermark + 1; }));
  EXPECT_EQ(fingerprints(B), fingerprints(A));
}

//===--- standby divergence property (every shipped-journal prefix) --------===//

TEST(StandbyDivergence, EveryShippedJournalPrefixRestoresTheReference) {
  // The acceptance property for replication durability: the journal a
  // standby accumulates purely from shipped frames, cut at EVERY byte
  // length (a standby crash can truncate anywhere), restores a core whose
  // estimates match the reference at that record count byte-for-byte —
  // torn tails cost only themselves.
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA, RecB;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  auto StoreB = StateStore::open(DirB.Path, FsyncPolicy::Never, RecB, Error);
  ASSERT_TRUE(StoreA && StoreB) << Error;

  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);

  // Build the standby journal exclusively through the replication path.
  {
    ServeOptions OptsB;
    OptsB.Store = StoreB.get();
    ServeCore B(OptsB);
    B.setReadOnly(true);
    DeltaJournal::ReadCursor Cursor;
    std::vector<uint8_t> Raw;
    uint32_t Count = 0;
    ASSERT_EQ(StoreA->journal().readFrames(Cursor, 1 << 20, 512, Raw, Count,
                                           Error),
              DeltaJournal::ReadResult::Ok)
        << Error;
    ASSERT_EQ(Count, 5u);
    uint64_t Applied = 0;
    std::vector<std::string> Diagnostics;
    ASSERT_TRUE(B.applyReplicatedBatch(Raw.data(), Raw.size(), 1, Count,
                                       /*Sync=*/true, Applied, Diagnostics,
                                       Error))
        << Error;
    ASSERT_EQ(Applied, 5u);
  }
  std::vector<uint8_t> Full = readFileBytes(DirB.Path + "/journal.ptwj");
  ASSERT_GT(Full.size(), 16u);
  ASSERT_EQ(Full, readFileBytes(DirA.Path + "/journal.ptwj"));

  TempDir DirC;
  std::string CutPath = DirC.Path + "/journal.ptwj";
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    SCOPED_TRACE("prefix length " + std::to_string(Len));
    ::unlink(CutPath.c_str());
    ::unlink((CutPath + ".quarantine").c_str());
    writeFileBytes(CutPath, Full.data(), Len);

    StateStore::Recovery Recovered;
    auto Store =
        StateStore::open(DirC.Path, FsyncPolicy::Never, Recovered, Error);
    ASSERT_TRUE(Store) << Error;
    size_t R = Recovered.Records.size();
    ASSERT_LT(R, RefAt.size());

    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Core(Opts);
    ServeCore::RestoreReport RR;
    Core.restore(Recovered, RR);
    EXPECT_EQ(RR.RecordsReplayed, R);
    EXPECT_TRUE(RR.Diagnostics.empty())
        << (RR.Diagnostics.empty() ? "" : RR.Diagnostics.front());
    EXPECT_EQ(fingerprints(Core), RefAt[R]);
  }
}

//===--- injected crashes on the standby apply path ------------------------===//

TEST(ReplCrash, CrashBetweenJournalAndApplyLosesNothing) {
  // crash.at=repl.journal kills the standby after the shipped frames hit
  // its journal but before any record is applied to live sessions. The
  // batch is already durable: recovery replays it and the restored
  // estimates match the reference.
  TempDir DirA, DirB;
  std::string Error;
  StateStore::Recovery RecA;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  ASSERT_TRUE(StoreA) << Error;
  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);

  DeltaJournal::ReadCursor Cursor;
  std::vector<uint8_t> Raw;
  uint32_t Count = 0;
  ASSERT_EQ(
      StoreA->journal().readFrames(Cursor, 1 << 20, 512, Raw, Count, Error),
      DeltaJournal::ReadResult::Ok)
      << Error;
  ASSERT_EQ(Count, 5u);

  for (const char *Point : {"repl.journal", "repl.apply"}) {
    SCOPED_TRACE(Point);
    TempDir DirS;
    expectInjectedCrash([&] {
      std::string E;
      StateStore::Recovery Rec;
      auto Store = StateStore::open(DirS.Path, FsyncPolicy::Always, Rec, E);
      if (!Store)
        ::_exit(7);
      ServeOptions Opts;
      Opts.Store = Store.get();
      ServeCore Standby(Opts);
      Standby.setReadOnly(true);
      ScopedFaultInjection Fault(std::string("crash.at=") + Point);
      if (!Fault.ok())
        ::_exit(7);
      uint64_t Applied = 0;
      std::vector<std::string> Diagnostics;
      Standby.applyReplicatedBatch(Raw.data(), Raw.size(), 1, Count,
                                   /*Sync=*/true, Applied, Diagnostics, E);
    });

    StateStore::Recovery Rec;
    auto Store = StateStore::open(DirS.Path, FsyncPolicy::Never, Rec, Error);
    ASSERT_TRUE(Store) << Error;
    EXPECT_EQ(Rec.Records.size(), 5u);
    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Recovered(Opts);
    ServeCore::RestoreReport RR;
    Recovered.restore(Rec, RR);
    EXPECT_EQ(fingerprints(Recovered), RefAt.back());
  }
}

TEST(ReplCrash, CrashDuringPromotionLeavesTheJournalReplayable) {
  // crash.at=repl.promote kills the standby after its journal is synced
  // but before the read-only gate lifts: the next boot still replays the
  // full replicated history.
  TempDir DirA, DirS;
  std::string Error;
  StateStore::Recovery RecA;
  auto StoreA = StateStore::open(DirA.Path, FsyncPolicy::Never, RecA, Error);
  ASSERT_TRUE(StoreA) << Error;
  ServeOptions OptsA;
  OptsA.Store = StoreA.get();
  ServeCore A(OptsA);
  std::vector<std::vector<std::vector<std::string>>> RefAt;
  driveReference(A, StoreA->journal(), RefAt);
  DeltaJournal::ReadCursor Cursor;
  std::vector<uint8_t> Raw;
  uint32_t Count = 0;
  ASSERT_EQ(
      StoreA->journal().readFrames(Cursor, 1 << 20, 512, Raw, Count, Error),
      DeltaJournal::ReadResult::Ok)
      << Error;

  expectInjectedCrash([&] {
    std::string E;
    StateStore::Recovery Rec;
    auto Store = StateStore::open(DirS.Path, FsyncPolicy::Always, Rec, E);
    if (!Store)
      ::_exit(7);
    ServeOptions Opts;
    Opts.Store = Store.get();
    ServeCore Core(Opts);
    Core.setReadOnly(true);
    uint64_t Applied = 0;
    std::vector<std::string> Diagnostics;
    if (!Core.applyReplicatedBatch(Raw.data(), Raw.size(), 1, Count,
                                   /*Sync=*/false, Applied, Diagnostics, E))
      ::_exit(7);
    StandbyReplicator::Options SOpts;
    SOpts.Core = &Core;
    SOpts.Store = Store.get();
    StandbyReplicator Standby(SOpts);
    ScopedFaultInjection Fault("crash.at=repl.promote");
    if (!Fault.ok())
      ::_exit(7);
    Standby.promote(E); // Dies after the journal sync.
  });

  StateStore::Recovery Rec;
  auto Store = StateStore::open(DirS.Path, FsyncPolicy::Never, Rec, Error);
  ASSERT_TRUE(Store) << Error;
  EXPECT_EQ(Rec.Records.size(), 5u);
  ServeOptions Opts;
  Opts.Store = Store.get();
  ServeCore Recovered(Opts);
  ServeCore::RestoreReport RR;
  Recovered.restore(Rec, RR);
  EXPECT_EQ(fingerprints(Recovered), RefAt.back());
}

TEST(ReplCrash, TornBootstrapMarkerForcesAFullRebootstrap) {
  // A leftover repl-bootstrap.pending marker means a previous incarnation
  // died mid-bootstrap: start() must discard the half-adopted local state
  // (sessions, snapshots, journal) and demand a fresh bootstrap.
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Rec;
  auto Store = StateStore::open(Dir.Path, FsyncPolicy::Never, Rec, Error);
  ASSERT_TRUE(Store) << Error;
  ServeOptions Opts;
  Opts.Store = Store.get();
  ServeCore Core(Opts);
  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  ASSERT_EQ(Core.handle(Load).Verb, "ok");
  ASSERT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");
  ASSERT_EQ(Core.sessionCount(), 1u);

  std::string Marker = Dir.Path + "/repl-bootstrap.pending";
  int MFd = ::open(Marker.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(MFd, 0);
  ::close(MFd);

  // Connect always fails: we only care about start()'s recovery step.
  StandbyReplicator::Options SOpts;
  SOpts.Core = &Core;
  SOpts.Store = Store.get();
  SOpts.Backoff =
      RetryPolicy().retries(1u << 30).baseDelay(std::chrono::milliseconds(1));
  SOpts.Connect = [](std::string &Err) {
    Err = "refused";
    return -1;
  };
  StandbyReplicator Standby(SOpts);
  ASSERT_TRUE(Standby.start(Error)) << Error;
  Standby.stop();

  EXPECT_EQ(Core.sessionCount(), 0u);
  EXPECT_EQ(Store->journal().nextLsn(), 1u);
  EXPECT_EQ(Store->journal().sizeBytes(), 16u);
  struct stat St;
  EXPECT_NE(::lstat(Marker.c_str(), &St), 0) << "marker not cleared";
}

//===--- adaptive flush cadence (satellite) --------------------------------===//

TEST(AdaptiveFlush, HotBurstFoldsBeforeTheTimerCadence) {
  // With a one-minute flush interval, an un-flushed stream append would
  // sit in its epoch forever on the timer path; the staleness bound must
  // seal it within tens of milliseconds.
  TempDir Dir;
  std::string Error;
  StateStore::Recovery Rec;
  auto Store = StateStore::open(Dir.Path, FsyncPolicy::Never, Rec, Error);
  ASSERT_TRUE(Store) << Error;
  ObsRegistry Obs;
  ServeOptions Opts;
  Opts.Store = Store.get();
  Opts.Obs = &Obs;
  Opts.FlushIntervalMs = 60000;
  Opts.FlushMaxStalenessMs = 40;
  Opts.FlushCellThreshold = 1u << 30; // Never trip on cell count.
  Opts.SnapshotIntervalMs = 0;
  ServeCore Core(Opts);

  WireMessage Load = makeRequest("load-program", "s0");
  Load.Body = TinySource;
  ASSERT_EQ(Core.handle(Load).Verb, "ok");
  ASSERT_EQ(Core.handle(makeRequest("run", "s0")).Verb, "ok");
  unsigned Leaf = leafIndex(Core);
  uint64_t Tail = Store->journal().lastLsn();

  Core.startFlusher();
  WireMessage Deltas = makeRequest("stream-deltas", "s0");
  for (int I = 0; I < 4; ++I)
    appendStreamRecord(Deltas.Body, Leaf, 0, 3.0);
  ASSERT_EQ(Core.handle(Deltas).Verb, "ok"); // No flush=1: epoch stays hot.

  EXPECT_TRUE(waitFor(
      [&] { return Obs.counterValue("stream.staleness_flushes") >= 1; },
      5000))
      << "staleness bound never sealed the epoch";
  // The seal journaled the fold: durable, not just folded in memory.
  EXPECT_TRUE(waitFor([&] { return Store->journal().lastLsn() > Tail; }));
  Core.stopFlusher();
}

//===--- wire frame stall deadline (satellite) -----------------------------===//

TEST(WireTimeout, MidFramePeerStallIsATruncatedFrameError) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  // One lonely byte arms the deadline; the peer then goes silent.
  uint8_t Byte = 0x01;
  ASSERT_EQ(::send(Sv[0], &Byte, 1, 0), 1);
  WireMessage M;
  std::string Error;
  auto Start = std::chrono::steady_clock::now();
  int Rc = readFrame(Sv[1], M, Error, /*MidFrameTimeoutMs=*/100);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_EQ(Rc, -1);
  EXPECT_NE(Error.find("stalled"), std::string::npos) << Error;
  EXPECT_NE(Error.find("truncated frame"), std::string::npos) << Error;
  EXPECT_GE(Elapsed, std::chrono::milliseconds(50));
  EXPECT_LT(Elapsed, std::chrono::seconds(5));
  ::close(Sv[0]);
  ::close(Sv[1]);
}

TEST(WireTimeout, CompleteFramesAndIdleConnectionsAreUnaffected) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  WireMessage Out;
  Out.Verb = "ping";
  Out.Params["k"] = "v";
  Out.Body = std::string(4096, 'x');
  std::string Error;
  ASSERT_TRUE(writeFrame(Sv[0], Out, Error)) << Error;
  WireMessage In;
  // A frame already in the buffer round-trips under any deadline.
  EXPECT_EQ(readFrame(Sv[1], In, Error, 100), 1) << Error;
  EXPECT_EQ(In.Verb, "ping");
  EXPECT_EQ(In.param("k"), "v");
  EXPECT_EQ(In.Body, Out.Body);

  // An idle connection does NOT trip the deadline: it only arms once the
  // first byte of a frame arrives. The reader blocks until the peer
  // writes (here: shortly after), then completes normally.
  std::thread Writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    WireMessage Late;
    Late.Verb = "ping";
    std::string E;
    writeFrame(Sv[0], Late, E);
  });
  WireMessage Late;
  EXPECT_EQ(readFrame(Sv[1], Late, Error, 100), 1) << Error;
  EXPECT_EQ(Late.Verb, "ping");
  Writer.join();
  ::close(Sv[0]);
  ::close(Sv[1]);
}
