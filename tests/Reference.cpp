//===--- tests/Reference.cpp - Brute-force reference algorithms -----------===//

#include "Reference.h"

using namespace ptran;
using namespace ptran::testing;

namespace {

/// Nodes reachable from \p From, optionally pretending \p Removed is
/// absent.
std::vector<bool> reachableFrom(const Digraph &G, NodeId From,
                                NodeId Removed = InvalidNode) {
  std::vector<bool> Seen(G.numNodes(), false);
  if (From == Removed)
    return Seen;
  std::vector<NodeId> Worklist = {From};
  Seen[From] = true;
  while (!Worklist.empty()) {
    NodeId N = Worklist.back();
    Worklist.pop_back();
    for (NodeId S : G.successors(N)) {
      if (S == Removed || Seen[S])
        continue;
      Seen[S] = true;
      Worklist.push_back(S);
    }
  }
  return Seen;
}

} // namespace

std::vector<std::set<NodeId>>
ptran::testing::bruteForceDominators(const Digraph &G, NodeId Root) {
  std::vector<std::set<NodeId>> Dom(G.numNodes());
  std::vector<bool> Base = reachableFrom(G, Root);
  for (NodeId A = 0; A < G.numNodes(); ++A) {
    if (!Base[A])
      continue;
    std::vector<bool> Without = reachableFrom(G, Root, A);
    for (NodeId B = 0; B < G.numNodes(); ++B)
      if (Base[B] && (B == A || !Without[B]))
        Dom[B].insert(A);
  }
  return Dom;
}

std::vector<std::set<NodeId>>
ptran::testing::bruteForcePostDominators(const Digraph &G, NodeId Stop) {
  return bruteForceDominators(G.reversed(), Stop);
}

std::set<std::tuple<NodeId, NodeId, LabelId>>
ptran::testing::bruteForceControlDependence(const Digraph &G, NodeId Stop) {
  std::vector<std::set<NodeId>> Pdom = bruteForcePostDominators(G, Stop);

  auto Postdom = [&](NodeId A, NodeId B) { return Pdom[B].count(A) != 0; };

  std::set<std::tuple<NodeId, NodeId, LabelId>> Out;
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.isLive(E))
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    NodeId X = Ed.From;
    NodeId Z = Ed.To;
    // Skip nodes with undefined postdominators (cannot reach Stop).
    if (Pdom[X].empty() || Pdom[Z].empty())
      continue;
    for (NodeId Y = 0; Y < G.numNodes(); ++Y) {
      if (Pdom[Y].empty())
        continue;
      if (Postdom(Y, X))
        continue; // Condition 1 fails (note: reflexive, so Y != X holds).
      // Condition 2/3: a path X -> Z -> ... -> Y whose intermediate nodes
      // (everything after X and before Y) are postdominated by Y.
      bool Found = false;
      if (Z == Y) {
        Found = true; // Single-edge path: no intermediates.
      } else if (Postdom(Y, Z)) {
        // BFS from Z over nodes postdominated by Y, looking for Y.
        std::vector<bool> Seen(G.numNodes(), false);
        std::vector<NodeId> Worklist = {Z};
        Seen[Z] = true;
        while (!Worklist.empty() && !Found) {
          NodeId N = Worklist.back();
          Worklist.pop_back();
          for (NodeId S : G.successors(N)) {
            if (S == Y) {
              Found = true;
              break;
            }
            if (!Seen[S] && !Pdom[S].empty() && Postdom(Y, S)) {
              Seen[S] = true;
              Worklist.push_back(S);
            }
          }
        }
      }
      if (Found)
        Out.insert({X, Y, Ed.Label});
    }
  }
  return Out;
}
