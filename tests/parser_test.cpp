//===--- tests/parser_test.cpp - Mini-language front-end tests ------------===//

#include "ir/Printer.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace ptran;

namespace {

std::unique_ptr<Program> parseOk(std::string_view Src) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

void expectParseError(std::string_view Src, std::string_view Needle) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  EXPECT_EQ(P, nullptr) << "expected a diagnostic containing '" << Needle
                        << "'";
  EXPECT_NE(Diags.str().find(Needle), std::string::npos)
      << "diagnostics were:\n"
      << Diags.str();
}

TEST(Lexer, TokenKindsAndDotOperators) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks =
      Lexer::tokenize("x .lt. 1.5 .and. y >= 2 ! comment\n3.eq.4", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::Identifier, TokKind::Lt,    TokKind::RealLit, TokKind::And,
      TokKind::Identifier, TokKind::Ge,    TokKind::IntLit,  TokKind::Newline,
      TokKind::IntLit,     TokKind::EqCmp, TokKind::IntLit,  TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
  // `3.eq.4` must lex 3 as an integer (the dot starts .EQ.).
  EXPECT_EQ(Toks[8].IntValue, 3);
  EXPECT_DOUBLE_EQ(Toks[2].RealValue, 1.5);
}

TEST(Lexer, RealLiteralForms) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks =
      Lexer::tokenize(".5 1. 2.5e3 1d-2 7e+1", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_DOUBLE_EQ(Toks[0].RealValue, 0.5);
  EXPECT_DOUBLE_EQ(Toks[1].RealValue, 1.0);
  EXPECT_DOUBLE_EQ(Toks[2].RealValue, 2500.0);
  EXPECT_DOUBLE_EQ(Toks[3].RealValue, 0.01);
  EXPECT_DOUBLE_EQ(Toks[4].RealValue, 70.0);
}

TEST(Lexer, IntegerOverflowIsDiagnosed) {
  // One past INT64_MAX: strtoll saturates and sets ERANGE; before the
  // check this lexed "successfully" as 9223372036854775807.
  DiagnosticEngine Diags;
  Lexer::tokenize("9223372036854775808", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("overflows"), std::string::npos) << Diags.str();
}

TEST(Lexer, Int64MaxStillLexes) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = Lexer::tokenize("9223372036854775807", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[0].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[0].IntValue, 9223372036854775807LL);
}

TEST(Lexer, RealOverflowIsDiagnosed) {
  DiagnosticEngine Diags;
  Lexer::tokenize("1e999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("out of range"), std::string::npos)
      << Diags.str();
}

TEST(Lexer, RealUnderflowIsNotAnError) {
  // 1e-999 underflows to 0 (ERANGE too) — that is representable, not a
  // user error.
  DiagnosticEngine Diags;
  std::vector<Token> Toks = Lexer::tokenize("1e-999", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[0].Kind, TokKind::RealLit);
}

TEST(ParserErrors, OverflowingLiteralFailsParse) {
  expectParseError(R"(
program main
  x = 9999999999999999999999999999
end
)",
                   "overflows");
}

TEST(Lexer, RejectsStrayCharacters) {
  DiagnosticEngine Diags;
  Lexer::tokenize("x = 1 @ 2", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, BasicProgramShape) {
  auto P = parseOk(R"(
program main
  integer n
  n = 3
  call foo(n)
end
subroutine foo(k)
  k = k + 1
end
)");
  EXPECT_EQ(P->entryName(), "main");
  ASSERT_NE(P->findFunction("foo"), nullptr);
  EXPECT_EQ(P->findFunction("FOO"), P->findFunction("foo")); // Case-blind.
  EXPECT_EQ(P->findFunction("foo")->params().size(), 1u);
}

TEST(Parser, ImplicitTyping) {
  auto P = parseOk(R"(
program main
  i = 1
  x = 2.5
end
)");
  const Function *F = P->entry();
  EXPECT_EQ(F->symbol(F->lookup("i")).Ty, Type::Integer);
  EXPECT_EQ(F->symbol(F->lookup("x")).Ty, Type::Real);
}

TEST(Parser, LabeledDoAndEnddoForms) {
  auto P = parseOk(R"(
program main
  integer i, j, k
  do 10 i = 1, 3
    do 10 j = 1, 3
      k = k + 1
10 continue
  do i = 1, 2
    k = k - 1
  enddo
end
)");
  const Function *F = P->entry();
  // Two labelled DOs share their terminal CONTINUE; each got an ENDDO.
  unsigned Dos = 0, Ends = 0;
  for (StmtId S = 0; S < F->numStmts(); ++S) {
    Dos += isa<DoStmt>(F->stmt(S));
    Ends += isa<EndDoStmt>(F->stmt(S));
  }
  EXPECT_EQ(Dos, 3u);
  EXPECT_EQ(Ends, 3u);
  // DO/ENDDO pairing is consistent.
  for (StmtId S = 0; S < F->numStmts(); ++S)
    if (const auto *Do = dyn_cast<DoStmt>(F->stmt(S))) {
      ASSERT_NE(Do->matchingEnd(), InvalidStmt);
      EXPECT_EQ(cast<EndDoStmt>(F->stmt(Do->matchingEnd()))->matchingDo(), S);
    }
}

TEST(Parser, BlockIfElseChainLowering) {
  auto P = parseOk(R"(
program main
  integer a, b
  if (a .lt. 0) then
    b = 1
  else if (a .eq. 0) then
    b = 2
  else
    b = 3
  endif
end
)");
  // Semantic spot check via the interpreter is elsewhere; here: it parses
  // to a finalized function with resolved branches.
  const Function *F = P->entry();
  for (StmtId S = 0; S < F->numStmts(); ++S)
    if (const auto *If = dyn_cast<IfGotoStmt>(F->stmt(S))) {
      EXPECT_NE(If->target(), InvalidStmt);
    }
}

TEST(Parser, LogicalIfWithArbitraryStatement) {
  auto P = parseOk(R"(
program main
  integer a
  if (a .gt. 0) a = a - 1
  if (a .gt. 5) call foo(a)
end
subroutine foo(x)
  x = 0
end
)");
  EXPECT_NE(P, nullptr);
}

TEST(Parser, OperatorPrecedence) {
  auto P = parseOk(R"(
program main
  x = 1.0 + 2.0 * 3.0 ** 2
end
)");
  const Function *F = P->entry();
  const auto *A = cast<AssignStmt>(F->stmt(0));
  // 1 + (2 * (3 ** 2)): top node is +.
  const auto *Add = cast<BinaryExpr>(A->value());
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  const auto *Mul = cast<BinaryExpr>(Add->rhs());
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
  EXPECT_EQ(cast<BinaryExpr>(Mul->rhs())->op(), BinaryOp::Pow);
}

TEST(Parser, ArraysVersusIntrinsics) {
  auto P = parseOk(R"(
program main
  real a(10), b(5, 5)
  a(3) = sqrt(4.0) + mod(7, 3)
  b(2, 2) = a(1)
end
)");
  const Function *F = P->entry();
  EXPECT_TRUE(F->symbol(F->lookup("a")).isArray());
  const auto *A = cast<AssignStmt>(F->stmt(0));
  const auto *Add = cast<BinaryExpr>(A->value());
  EXPECT_TRUE(isa<IntrinsicExpr>(Add->lhs()));
}

TEST(Parser, GoToTwoWordForm) {
  auto P = parseOk(R"(
program main
  integer i
  i = 0
10 i = i + 1
  if (i .lt. 3) go to 10
end
)");
  EXPECT_NE(P, nullptr);
}

TEST(ParserErrors, UndefinedLabel) {
  expectParseError(R"(
program main
  goto 99
end
)",
                   "undefined statement label 99");
}

TEST(ParserErrors, DuplicateLabel) {
  expectParseError(R"(
program main
10 continue
10 continue
end
)",
                   "duplicate statement label");
}

TEST(ParserErrors, UnbalancedDo) {
  expectParseError(R"(
program main
  integer i
  do i = 1, 3
  i = i
end
)",
                   "DO without matching ENDDO");
}

TEST(ParserErrors, EnddoWithoutDo) {
  expectParseError(R"(
program main
  enddo
end
)",
                   "ENDDO without matching DO");
}

TEST(ParserErrors, UnknownArrayOrIntrinsic) {
  expectParseError(R"(
program main
  x = frobnicate(3)
end
)",
                   "neither a declared array nor an intrinsic");
}

TEST(ParserErrors, MissingEndif) {
  expectParseError(R"(
program main
  if (1 .lt. 2) then
    x = 1
end
)",
                   "ENDIF");
}

TEST(ParserErrors, DuplicateProcedure) {
  expectParseError(R"(
subroutine foo()
end
subroutine foo()
end
)",
                   "duplicate procedure");
}

TEST(ParserErrors, CallArityMismatchCaughtByVerifier) {
  expectParseError(R"(
program main
  call foo(1, 2)
end
subroutine foo(a)
end
)",
                   "expects 1 arguments");
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = R"(
program main
  integer i, n
  real a(8)
  n = 8
  do 10 i = 1, n
    a(i) = real(i) * 1.5
10 continue
  s = 0.0
  do i = 1, n
    s = s + a(i)
  enddo
  if (s .gt. 10.0) then
    print s
  endif
end
)";
  auto P1 = parseOk(Src);
  std::string Printed1 = printProgram(*P1);
  DiagnosticEngine Diags;
  auto P2 = parseProgram(Printed1, Diags);
  ASSERT_NE(P2, nullptr) << "reparse failed:\n" << Diags.str() << Printed1;
  // Printing is a fixed point after one round trip.
  EXPECT_EQ(printProgram(*P2), Printed1);
}

} // namespace
