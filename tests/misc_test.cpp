//===--- tests/misc_test.cpp - Annotated listings, splitting, goldens -----===//
//
// Odds and ends with teeth: the annotated profiler listing ("Statement S
// was executed n times"), node splitting as a random-graph property, a
// golden output for the SIMPLE workload guarding interpreter semantics,
// and the FCDG DOT export.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "cost/Report.h"
#include "interp/Interpreter.h"
#include "interval/Intervals.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(AnnotatedListing, ShowsCountsTimesAndDeviations) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  TimeAnalysis TA = Est->analyze(figure3CostOptions());

  std::string Listing = annotatedListing(
      Est->analysis().of(*Fix.Main), Est->totalsFor(*Fix.Main), TA);

  // The loop's IF ran 10 times with TIME 92, the CALL 9 times with TIME
  // 100; the elided GOTOs show as '-'.
  EXPECT_NE(Listing.find("         10 |         92 |         30 | 10 IF"),
            std::string::npos)
      << Listing;
  EXPECT_NE(Listing.find("          9 |        100 |          0 | 40 CALL"),
            std::string::npos)
      << Listing;
  EXPECT_NE(Listing.find("          - |          - |          - | GOTO"),
            std::string::npos)
      << Listing;
}

TEST(NodeSplittingProperty, RandomIrreducibleGraphsBecomeReducible) {
  for (uint64_t Seed = 600; Seed < 620; ++Seed) {
    Rng R(Seed);
    unsigned N = static_cast<unsigned>(R.uniformInt(4, 10));
    Cfg C;
    for (unsigned I = 0; I < N; ++I)
      C.createNode(CfgNodeType::Other);
    C.setEntry(0);
    // A spine plus random extra edges: frequently irreducible.
    for (NodeId I = 0; I + 1 < N; ++I)
      C.addEdge(I, I + 1, CfgLabel::U);
    for (unsigned E = 0; E < N; ++E) {
      NodeId A = static_cast<NodeId>(R.uniformInt(0, N - 1));
      NodeId B = static_cast<NodeId>(R.uniformInt(0, N - 1));
      if (A != B)
        C.addEdge(A, B, CfgLabel::T);
    }

    DiagnosticEngine Diags;
    unsigned Copies = splitNodes(C, Diags);
    if (Diags.hasErrors())
      continue; // Growth budget exceeded: allowed, just not silent.
    EXPECT_TRUE(isReducible(CsrGraph(C.graph()).view(), C.entry()))
        << "seed " << Seed << " after " << Copies << " copies";
    EXPECT_TRUE(IntervalStructure::compute(C, Diags).has_value())
        << "seed " << Seed << "\n"
        << Diags.str();
  }
}

TEST(WorkloadGolden, SimpleOutputIsStable) {
  // Guards the interpreter's arithmetic end to end: SIMPLE prints its
  // final kinetic and internal energy.
  std::unique_ptr<Program> P = parseWorkload(simpleKernel());
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run(simpleKernel().MaxSteps);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "1.71012e-05 25000\n");
}

TEST(WorkloadGolden, LoopsIsDeterministic) {
  std::unique_ptr<Program> P = parseWorkload(livermoreLoops());
  RunResult A = Interpreter(*P, CostModel::optimizing()).run();
  RunResult B = Interpreter(*P, CostModel::optimizing()).run();
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.StatementsExecuted, B.StatementsExecuted);
}

TEST(StrictParsing, ParseUnsigned) {
  EXPECT_EQ(parseUnsigned("0"), 0u);
  EXPECT_EQ(parseUnsigned("42"), 42u);
  EXPECT_EQ(parseUnsigned("4294967295"), 4294967295u);
  // Everything atoi would silently mangle must be rejected.
  EXPECT_FALSE(parseUnsigned(""));
  EXPECT_FALSE(parseUnsigned("ten"));
  EXPECT_FALSE(parseUnsigned("3x"));
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("+1"));
  EXPECT_FALSE(parseUnsigned(" 1"));
  EXPECT_FALSE(parseUnsigned("4294967296")); // UINT_MAX + 1
  EXPECT_FALSE(parseUnsigned("99999999999999999999"));
}

TEST(StrictParsing, ParseDouble) {
  EXPECT_EQ(parseDouble("0"), 0.0);
  EXPECT_EQ(parseDouble("2.5"), 2.5);
  EXPECT_EQ(parseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(parseDouble(""));
  EXPECT_FALSE(parseDouble("abc"));
  EXPECT_FALSE(parseDouble("2.5x"));
  EXPECT_FALSE(parseDouble("1e999")); // overflows to infinity
  EXPECT_FALSE(parseDouble("nan"));
}

TEST(FcdgDot, RendersNodesAndPseudoEdges) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Fix.Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  const FunctionAnalysis &FA = PA->of(*Fix.Main);
  std::string Dot = FA.cd().dot(FA.ecfg().cfg(), "fig3");
  EXPECT_NE(Dot.find("digraph \"fig3\""), std::string::npos);
  EXPECT_NE(Dot.find("START"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"Z\", style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("CALL foo"), std::string::npos);
}

} // namespace
