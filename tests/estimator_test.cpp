//===--- tests/estimator_test.cpp - End-to-end facade tests ---------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "parser/Parser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(Estimator, DeprecatedPositionalCreateStillWorks) {
  // The pre-EstimatorOptions signature must keep working (with a
  // deprecation warning, suppressed here) and produce the same pipeline
  // as the options-based overload.
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto Old = Estimator::create(*Fix.Prog, CostModel::optimizing(), Diags,
                               ProfileMode::Smart, 1);
#pragma GCC diagnostic pop
  ASSERT_NE(Old, nullptr) << Diags.str();
  EXPECT_EQ(Old->options().Mode, ProfileMode::Smart);
  EXPECT_EQ(Old->options().Exec.Jobs, 1u);
  EXPECT_EQ(Old->options().Diags, &Diags);
  ASSERT_TRUE(Old->profiledRun().Ok);
  TimeAnalysis OldTA = Old->analyze();

  DiagnosticEngine Diags2;
  auto New = Estimator::create(*Fix.Prog, CostModel::optimizing(),
                               EstimatorOptions(Diags2));
  ASSERT_NE(New, nullptr) << Diags2.str();
  ASSERT_TRUE(New->profiledRun().Ok);
  TimeAnalysis NewTA = New->analyze();
  EXPECT_EQ(OldTA.programTime(), NewTA.programTime());
  EXPECT_EQ(OldTA.programStdDev(), NewTA.programStdDev());
}

TEST(Estimator, EndToEndFromSource) {
  const char *Src = R"(
program main
  integer i, n, s
  n = 20
  s = 0
  do 10 i = 1, n
    if (mod(i, 3) .eq. 0) s = s + i
10 continue
  print s
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();

  RunResult R = Est->profiledRun();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "63\n"); // 3+6+9+12+15+18.

  TimeAnalysis TA = Est->analyze();
  // The estimate equals the simulated cycles exactly: frequencies came
  // from this very run.
  EXPECT_NEAR(TA.programTime(), R.Cycles, 1e-6 * R.Cycles);
}

TEST(Estimator, RejectsIrreduciblePrograms) {
  // A GOTO weave producing two loop entries.
  const char *Src = R"(
program main
  integer a
  a = 0
  if (a .gt. 0) goto 20
10 a = a + 1
  goto 30
20 a = a + 2
30 if (a .lt. 5) goto 20
  if (a .lt. 9) goto 10
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  EXPECT_EQ(Est, nullptr);
  EXPECT_NE(Diags.str().find("irreducible"), std::string::npos)
      << Diags.str();
}

TEST(Estimator, AnalysisMatchesRunCyclesOnWorkloads) {
  for (const Workload *W : table1Workloads()) {
    std::unique_ptr<Program> P = parseWorkload(*W);
    DiagnosticEngine Diags;
    auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
    ASSERT_NE(Est, nullptr) << W->Name << "\n" << Diags.str();
    RunResult R = Est->profiledRun(W->MaxSteps);
    ASSERT_TRUE(R.Ok) << W->Name << ": " << R.Error;
    TimeAnalysis TA = Est->analyze();
    EXPECT_NEAR(TA.programTime(), R.Cycles, 1e-6 * R.Cycles) << W->Name;
    // Variance exists: the workloads have data-dependent branches.
    EXPECT_GE(TA.programStdDev(), 0.0);
  }
}

TEST(Estimator, NaiveModeStillMeasuresOverhead) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Fix.Prog, CostModel::optimizing(),
                               EstimatorOptions(Diags).mode(ProfileMode::Naive));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  EXPECT_GT(Est->runtime().dynamicIncrements() +
                Est->runtime().dynamicAdds(),
            0u);
  EXPECT_GT(Est->runtime().overheadCycles(), 0.0);
  // Naive counters measure blocks, not conditions.
  EXPECT_FALSE(Est->totalsFor(*Fix.Main).Ok);
}

TEST(Estimator, RandomProgramsEstimateTheirOwnRun) {
  for (uint64_t Seed : {11ull, 22ull, 33ull, 44ull}) {
    std::unique_ptr<Program> P =
        makeRandomProgram(Seed, RandomProgramConfig());
    DiagnosticEngine Diags;
    auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
    ASSERT_NE(Est, nullptr) << Diags.str();
    RunResult R = Est->profiledRun();
    ASSERT_TRUE(R.Ok) << R.Error;
    TimeAnalysis TA = Est->analyze();
    EXPECT_NEAR(TA.programTime(), R.Cycles,
                1e-6 * std::max(1.0, R.Cycles))
        << "seed " << Seed;
  }
}

} // namespace
