//===--- tests/profile_file_test.cpp - Durable profile robustness ---------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
// Covers the fault-tolerant profile subsystem: serialize/deserialize and
// file round trips, the bit-flip property ("every single-byte corruption
// is diagnosed, never a crash or a silently wrong result"), saturating
// merge semantics, the bounded recovery fixpoint on poisoned counters,
// and the deterministic fault-injection harness itself.
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "parser/Parser.h"
#include "profile/ProfileFile.h"
#include "profile/Recovery.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <gtest/gtest.h>

using namespace ptran;

namespace {

const char DiamondSource[] = R"FTN(
program main
  x = 0.0
  call mid(x)
  call leafb(x)
  print x
end
subroutine mid(x)
  call leafa(x)
  call leafb(x)
end
subroutine leafa(x)
  do 10 i = 1, 4
    x = x + 1.0
10 continue
end
subroutine leafb(x)
  x = x + 2.0
end
)FTN";

std::unique_ptr<Program> parseDiamond() {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(DiamondSource, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// An estimator with \p Runs profiled runs accumulated (loop moments
/// included, so profiles carry both payload kinds).
std::unique_ptr<Estimator> runEstimator(const Program &Prog, unsigned Runs,
                                        DiagnosticEngine &Diags) {
  auto Est = Estimator::create(
      Prog, CostModel::optimizing(),
      EstimatorOptions(Diags).loopVariance(LoopVarianceMode::Profiled));
  EXPECT_NE(Est, nullptr) << Diags.str();
  for (unsigned R = 0; R < Runs; ++R)
    EXPECT_TRUE(Est->profiledRun().Ok);
  return Est;
}

ProfileFile captureOf(const Estimator &Est, uint32_t Runs) {
  return ProfileFile::capture(Est.analysis(), Est.plan(), Est.runtime(),
                              &Est.loopStats(), Runs);
}

void expectSectionsEqual(const ProfileFile &A, const ProfileFile &B) {
  ASSERT_EQ(A.sections().size(), B.sections().size());
  for (size_t I = 0; I < A.sections().size(); ++I) {
    const FunctionSection &SA = A.sections()[I];
    const FunctionSection &SB = B.sections()[I];
    EXPECT_EQ(SA.Name, SB.Name);
    EXPECT_EQ(SA.Fingerprint, SB.Fingerprint);
    EXPECT_TRUE(SB.Valid) << SB.Name << ": " << SB.Issue;
    ASSERT_EQ(SA.Counters.size(), SB.Counters.size()) << SA.Name;
    if (!SA.Counters.empty()) {
      EXPECT_EQ(std::memcmp(SA.Counters.data(), SB.Counters.data(),
                            SA.Counters.size() * sizeof(double)),
                0)
          << "counters of " << SA.Name << " differ bitwise";
    }
    ASSERT_EQ(SA.Loops.size(), SB.Loops.size()) << SA.Name;
    for (size_t L = 0; L < SA.Loops.size(); ++L) {
      EXPECT_EQ(SA.Loops[L].HeaderStmt, SB.Loops[L].HeaderStmt);
      EXPECT_EQ(SA.Loops[L].Entries, SB.Loops[L].Entries);
      EXPECT_EQ(SA.Loops[L].Sum, SB.Loops[L].Sum);
      EXPECT_EQ(SA.Loops[L].SumSq, SB.Loops[L].SumSq);
    }
  }
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

TEST(ProfileFile, SerializeRoundTrip) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = runEstimator(*Prog, 2, Diags);
  ProfileFile PF = captureOf(*Est, 2);
  ASSERT_EQ(PF.sections().size(), Prog->functions().size());
  EXPECT_EQ(PF.programFingerprint(), programFingerprintOf(Est->analysis()));

  DiagnosticEngine LoadDiags;
  std::optional<ProfileFile> Back =
      ProfileFile::deserialize(PF.serialize(), &LoadDiags);
  ASSERT_TRUE(Back.has_value()) << LoadDiags.str();
  EXPECT_TRUE(LoadDiags.diagnostics().empty()) << LoadDiags.str();
  EXPECT_EQ(Back->version(), PF.version());
  EXPECT_EQ(Back->programFingerprint(), PF.programFingerprint());
  EXPECT_EQ(Back->mode(), PF.mode());
  EXPECT_EQ(Back->runs(), 2u);
  expectSectionsEqual(PF, *Back);
}

TEST(ProfileFile, FileRoundTrip) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = runEstimator(*Prog, 1, Diags);
  ProfileFile PF = captureOf(*Est, 1);

  const std::string Path = tempPath("ptran_roundtrip.ptpf");
  DiagnosticEngine IoDiags;
  ASSERT_TRUE(PF.saveToFile(Path, &IoDiags)) << IoDiags.str();
  std::optional<ProfileFile> Back = ProfileFile::loadFromFile(Path, &IoDiags);
  ASSERT_TRUE(Back.has_value()) << IoDiags.str();
  expectSectionsEqual(PF, *Back);
  std::remove(Path.c_str());
}

TEST(ProfileFile, LoadFailsOnMissingFileAndGarbage) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      ProfileFile::loadFromFile("/nonexistent/dir/p.ptpf", &Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());

  // Garbage that is too short to even hold the magic.
  DiagnosticEngine D2;
  EXPECT_FALSE(ProfileFile::deserialize({0x50, 0x54}, &D2).has_value());
  EXPECT_TRUE(D2.hasErrors());
}

// The central robustness property: for EVERY byte of a serialized
// profile, flipping a bit of that byte must either fail the whole load
// with an error (header corruption) or mark at least one section invalid
// with a warning (payload corruption) — and every section that still
// reads as valid must be bit-identical to the original. No crash, no UB
// (the _ubsan suite entry reruns this under -fsanitize=undefined), and
// never a silently-accepted wrong result.
TEST(ProfileFile, EverySingleByteFlipIsDiagnosed) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = runEstimator(*Prog, 1, Diags);
  ProfileFile PF = captureOf(*Est, 1);
  const std::vector<uint8_t> Clean = PF.serialize();
  ASSERT_GT(Clean.size(), 0u);

  for (size_t I = 0; I < Clean.size(); ++I) {
    // CRC32 detects all single-bit errors; walk the bit position with the
    // byte index so every bit lane gets exercised across the file.
    const uint8_t Mask = static_cast<uint8_t>(1u << (I % 8));
    std::vector<uint8_t> Bad = Clean;
    Bad[I] ^= Mask;

    DiagnosticEngine FlipDiags;
    std::optional<ProfileFile> Loaded =
        ProfileFile::deserialize(Bad, &FlipDiags);
    if (!Loaded.has_value()) {
      EXPECT_TRUE(FlipDiags.hasErrors())
          << "byte " << I << ": rejected without an error diagnostic";
      continue;
    }
    unsigned Invalid = 0;
    for (const FunctionSection &S : Loaded->sections()) {
      if (!S.Valid) {
        ++Invalid;
        EXPECT_FALSE(S.Issue.empty()) << "byte " << I;
        continue;
      }
      // A surviving section must match the uncorrupted original exactly.
      const FunctionSection *Orig = PF.sectionFor(S.Name);
      ASSERT_NE(Orig, nullptr) << "byte " << I << ": section " << S.Name;
      ASSERT_EQ(S.Counters.size(), Orig->Counters.size()) << "byte " << I;
      if (!S.Counters.empty()) {
        EXPECT_EQ(std::memcmp(S.Counters.data(), Orig->Counters.data(),
                              S.Counters.size() * sizeof(double)),
                  0)
            << "byte " << I << ": silent corruption in " << S.Name;
      }
    }
    EXPECT_GT(Invalid, 0u)
        << "byte " << I << ": corruption accepted with no diagnostic";
    EXPECT_FALSE(FlipDiags.diagnostics().empty()) << "byte " << I;
  }
}

TEST(ProfileFile, MergeAccumulatesCounters) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  std::unique_ptr<Estimator> E1 = runEstimator(*Prog, 1, D1);
  std::unique_ptr<Estimator> E2 = runEstimator(*Prog, 2, D2);
  ProfileFile A = captureOf(*E1, 1);
  const ProfileFile B = captureOf(*E2, 2);

  DiagnosticEngine MD;
  ASSERT_TRUE(A.merge(B, &MD)) << MD.str();
  EXPECT_EQ(A.runs(), 3u);
  // The interpreter is deterministic: run counts scale linearly, so the
  // merged counters must equal three single-run captures.
  DiagnosticEngine D3;
  std::unique_ptr<Estimator> E3 = runEstimator(*Prog, 3, D3);
  expectSectionsEqual(captureOf(*E3, 3), A);
}

TEST(ProfileFile, MergeSaturatesAtTwoToTheFiftyThree) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  std::unique_ptr<Estimator> E1 = runEstimator(*Prog, 1, D1);
  std::unique_ptr<Estimator> E2 = runEstimator(*Prog, 1, D2);
  ProfileFile A = captureOf(*E1, 1);
  ProfileFile B = captureOf(*E2, 1);
  ASSERT_FALSE(A.sections().empty());
  ASSERT_FALSE(A.sections()[0].Counters.empty());
  A.sectionsMutable()[0].Counters[0] = ProfileFile::SaturationLimit - 1.0;
  B.sectionsMutable()[0].Counters[0] = ProfileFile::SaturationLimit - 1.0;

  DiagnosticEngine MD;
  ASSERT_TRUE(A.merge(B, &MD));
  EXPECT_EQ(A.sections()[0].Counters[0], ProfileFile::SaturationLimit);
  bool Warned = false;
  for (const Diagnostic &D : MD.diagnostics())
    Warned |= D.Message.find("saturated") != std::string::npos;
  EXPECT_TRUE(Warned) << MD.str();
}

TEST(ProfileFile, MergeRejectsDifferentProgram) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine PD;
  std::unique_ptr<Program> Other = parseProgram(R"FTN(
program main
  x = 1.0
  print x
end
)FTN",
                                                PD);
  ASSERT_NE(Other, nullptr) << PD.str();
  DiagnosticEngine D1, D2;
  std::unique_ptr<Estimator> E1 = runEstimator(*Prog, 1, D1);
  std::unique_ptr<Estimator> E2 = runEstimator(*Other, 1, D2);
  ProfileFile A = captureOf(*E1, 1);
  const ProfileFile B = captureOf(*E2, 1);

  DiagnosticEngine MD;
  EXPECT_FALSE(A.merge(B, &MD));
  EXPECT_TRUE(MD.hasErrors());
}

TEST(ProfileFile, MergeSkipsFingerprintMismatchedSection) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  std::unique_ptr<Estimator> E1 = runEstimator(*Prog, 1, D1);
  std::unique_ptr<Estimator> E2 = runEstimator(*Prog, 1, D2);
  ProfileFile A = captureOf(*E1, 1);
  ProfileFile B = captureOf(*E2, 1);
  const std::vector<double> Before = A.sections()[0].Counters;
  B.sectionsMutable()[0].Fingerprint ^= 1;

  DiagnosticEngine MD;
  ASSERT_TRUE(A.merge(B, &MD)); // other sections still merge
  EXPECT_EQ(A.sections()[0].Counters, Before);
  bool Warned = false;
  for (const Diagnostic &D : MD.diagnostics())
    Warned |= D.Message.find("fingerprint") != std::string::npos;
  EXPECT_TRUE(Warned) << MD.str();
}

// Satellite (a): the recovery fixpoint must terminate with a diagnostic
// on contradictory counters (a NaN can keep the "is this total known yet"
// test false forever) instead of spinning.
TEST(Recovery, PoisonedCountersTerminateWithDiagnostic) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = runEstimator(*Prog, 1, Diags);
  const Function &Main = *Prog->entry();
  const FunctionPlan &Plan = Est->plan().of(Main);
  std::vector<double> Counters(Plan.numCounters(),
                               std::numeric_limits<double>::quiet_NaN());

  DiagnosticEngine RD;
  FrequencyTotals T =
      recoverTotals(Est->analysis().of(Main), Plan, Counters, &RD);
  EXPECT_FALSE(T.Ok);
  bool Reported = false;
  for (const Diagnostic &D : RD.diagnostics())
    Reported |= D.Message.find("did not converge") != std::string::npos;
  EXPECT_TRUE(Reported) << RD.str();
}

//===--- fault-injection harness ------------------------------------------===//

TEST(FaultInjection, MalformedSpecIsRejectedAndDisarmed) {
  {
    ScopedFaultInjection FI("pool.throw=zebra");
    EXPECT_FALSE(FI.ok());
    EXPECT_FALSE(FI.error().empty());
    EXPECT_FALSE(FaultInjection::armed());
  }
  {
    ScopedFaultInjection FI("frobnicate=1");
    EXPECT_FALSE(FI.ok());
  }
  {
    ScopedFaultInjection FI("io.fail=1.5"); // probability out of range
    EXPECT_FALSE(FI.ok());
  }
  EXPECT_FALSE(FaultInjection::armed());
}

TEST(FaultInjection, PoolTaskThrowPropagatesThroughFutures) {
  ScopedFaultInjection FI("seed=3,pool.throw=1");
  ASSERT_TRUE(FI.ok()) << FI.error();
  ThreadPool Pool(2);
  std::future<int> Fut = Pool.submit([] { return 42; });
  EXPECT_THROW(Fut.get(), FaultInjected);
  // One-shot: the second task runs normally.
  std::future<int> Again = Pool.submit([] { return 42; });
  EXPECT_EQ(Again.get(), 42);
  EXPECT_EQ(FaultInjection::instance().firedCount(
                FaultInjection::Site::PoolTask),
            1u);
}

TEST(FaultInjection, IoFailureFailsSaveWithDiagnostic) {
  ProfileFile PF;
  const std::string Path = tempPath("ptran_iofail.ptpf");
  ScopedFaultInjection FI("io.fail=1");
  ASSERT_TRUE(FI.ok()) << FI.error();
  DiagnosticEngine Diags;
  EXPECT_FALSE(PF.saveToFile(Path, &Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FaultInjection, InjectedByteFlipIsCaughtOnReload) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est = runEstimator(*Prog, 1, Diags);
  ProfileFile PF = captureOf(*Est, 1);
  const std::string Path = tempPath("ptran_flip.ptpf");

  // Write with a deterministic one-byte corruption, as if the disk had
  // rotted underneath us; the load must diagnose it, one way or another.
  {
    ScopedFaultInjection FI("seed=11,profile.flip=1");
    ASSERT_TRUE(FI.ok()) << FI.error();
    DiagnosticEngine SD;
    ASSERT_TRUE(PF.saveToFile(Path, &SD)) << SD.str();
  }
  DiagnosticEngine LD;
  std::optional<ProfileFile> Back = ProfileFile::loadFromFile(Path, &LD);
  if (Back.has_value()) {
    unsigned Invalid = 0;
    for (const FunctionSection &S : Back->sections())
      Invalid += S.Valid ? 0 : 1;
    EXPECT_GT(Invalid, 0u) << "corruption loaded without a diagnostic";
  } else {
    EXPECT_TRUE(LD.hasErrors());
  }
  std::remove(Path.c_str());
}

} // namespace
