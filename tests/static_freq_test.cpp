//===--- tests/static_freq_test.cpp - Compile-time frequency analysis -----===//
//
// Section 3's "program analysis is feasible for only a few restricted
// cases": constant-bound exit-free DO loops and compile-time IF
// conditions are decided exactly; everything else falls back to explicit
// heuristics; and the hybrid combination prefers the profile wherever one
// exists. Plus the constant folder those cases rely on.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "freq/StaticFrequencies.h"
#include "ir/ConstFold.h"
#include "parser/Parser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(ConstFold, FoldsLiteralTrees) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId X = B.intVar("x");

  auto FoldI = [&](Expr *E) {
    std::optional<FoldedValue> V = foldConstant(E);
    EXPECT_TRUE(V.has_value());
    return V ? V->I : int64_t(-999999);
  };

  EXPECT_EQ(FoldI(B.add(B.lit(2), B.mul(B.lit(3), B.lit(4)))), 14);
  EXPECT_EQ(FoldI(B.intrinsic(Intrinsic::Mod, {B.lit(17), B.lit(5)})), 2);
  EXPECT_EQ(FoldI(B.pow(B.lit(2), B.lit(8))), 256);

  std::optional<FoldedValue> Cmp = foldConstant(B.lt(B.lit(1), B.lit(2)));
  ASSERT_TRUE(Cmp.has_value());
  EXPECT_TRUE(Cmp->asBool());
  EXPECT_EQ(Cmp->Ty, Type::Logical);

  std::optional<FoldedValue> Real =
      foldConstant(B.intrinsic(Intrinsic::Sqrt, {B.lit(2.25)}));
  ASSERT_TRUE(Real.has_value());
  EXPECT_DOUBLE_EQ(Real->R, 1.5);

  // Variables block folding; faulting folds return nullopt.
  EXPECT_FALSE(foldConstant(B.add(B.var(X), B.lit(1))).has_value());
  EXPECT_FALSE(foldConstant(B.div(B.lit(1), B.lit(0))).has_value());
  EXPECT_FALSE(
      foldConstant(B.intrinsic(Intrinsic::Sqrt, {B.lit(-1.0)})).has_value());

  // Short-circuit folding decides even with an unfoldable right side.
  std::optional<FoldedValue> Sc = foldConstant(
      B.logicalAnd(B.lt(B.lit(2), B.lit(1)), B.lt(B.var(X), B.lit(5))));
  ASSERT_TRUE(Sc.has_value());
  EXPECT_FALSE(Sc->asBool());
  B.cont();
  B.finish();
}

TEST(StaticFrequenciesTest, ConstantProgramIsExactAndMatchesProfile) {
  // Constant-trip DO nest + a compile-time IF: the static analysis must
  // decide everything and agree with the profile perfectly.
  const char *Src = R"(
program main
  integer i, j, s
  s = 0
  do 10 i = 1, 6
    do 10 j = 1, 4
      if (1 .lt. 2) s = s + 1
10 continue
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  const Function *Main = P->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  StaticFrequencies Static = computeStaticFrequencies(FA);
  EXPECT_DOUBLE_EQ(Static.exactFraction(), 1.0);

  Frequencies Profiled =
      computeFrequencies(FA, Est->totalsFor(*Main));
  for (const ControlCondition &C : FA.cd().conditions())
    EXPECT_NEAR(Static.Freqs.freqOf(C), Profiled.freqOf(C), 1e-9)
        << cfgLabelName(C.Label);
  for (NodeId N : FA.cd().topoOrder())
    EXPECT_NEAR(Static.Freqs.NodeFreq[N], Profiled.NodeFreq[N], 1e-9);
}

TEST(StaticFrequenciesTest, HeuristicsFillTheUndecidable) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Fix.Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  const FunctionAnalysis &FA = PA->of(*Fix.Main);

  StaticFrequencyOptions Opts;
  Opts.DefaultLoopFrequency = 10.0;
  StaticFrequencies Static = computeStaticFrequencies(FA, Opts);

  // The goto loop's frequency is a heuristic; START and pseudo edges are
  // exact.
  NodeId Ph = FA.ecfg().preheaderOf(FA.intervals().headers().at(0));
  ControlCondition LoopCond{Ph, CfgLabel::U};
  EXPECT_FALSE(Static.Exact.at(LoopCond));
  EXPECT_DOUBLE_EQ(Static.Freqs.freqOf(LoopCond), 10.0);
  EXPECT_TRUE(
      Static.Exact.at({FA.ecfg().start(), CfgLabel::U}));
  EXPECT_LT(Static.exactFraction(), 1.0);

  // Branch heuristics are the configured default.
  NodeId A = FA.cfg().nodeForStmt(Fix.A);
  EXPECT_DOUBLE_EQ(Static.Freqs.freqOf({A, CfgLabel::T}), 0.5);
  EXPECT_DOUBLE_EQ(Static.Freqs.freqOf({A, CfgLabel::F}), 0.5);
}

TEST(StaticFrequenciesTest, EstimateIsInTheBallparkOnLoops) {
  // The Livermore suite is dominated by constant-trip DO nests, so the
  // purely static estimate should land within a small factor of the
  // profiled estimate.
  std::unique_ptr<Program> P = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  RunResult R = Est->profiledRun();
  ASSERT_TRUE(R.Ok);

  CostModel CM = CostModel::optimizing();
  std::map<const Function *, Frequencies> StaticFreqs, ProfFreqs;
  for (const auto &F : P->functions()) {
    const FunctionAnalysis &FA = Est->analysis().of(*F);
    StaticFreqs[F.get()] = computeStaticFrequencies(FA).Freqs;
    ProfFreqs[F.get()] = computeFrequencies(FA, Est->totalsFor(*F));
  }
  double StaticTime =
      TimeAnalysis::run(Est->analysis(), StaticFreqs, CM).programTime();
  double ProfTime =
      TimeAnalysis::run(Est->analysis(), ProfFreqs, CM).programTime();
  EXPECT_GT(StaticTime, 0.2 * ProfTime);
  EXPECT_LT(StaticTime, 5.0 * ProfTime);
}

TEST(StaticFrequenciesTest, HybridPrefersTheProfile) {
  // Two procedures; only one is ever called. The hybrid must use the
  // profile for the executed one and the static estimate for the other.
  const char *Src = R"(
program main
  integer n
  n = 0
  call hot(n)
end
subroutine hot(n)
  integer n, i
  do i = 1, 30
    n = n + 1
  enddo
end
subroutine cold(n)
  integer n, i
  do i = 1, 7
    n = n + 1
  enddo
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  const Function *Hot = P->findFunction("hot");
  const Function *Cold = P->findFunction("cold");
  const FunctionAnalysis &HotFA = Est->analysis().of(*Hot);
  const FunctionAnalysis &ColdFA = Est->analysis().of(*Cold);

  FrequencyTotals HotTotals = Est->totalsFor(*Hot);
  FrequencyTotals ColdTotals = Est->totalsFor(*Cold);
  StaticFrequencies HotStatic = computeStaticFrequencies(HotFA);
  StaticFrequencies ColdStatic = computeStaticFrequencies(ColdFA);

  Frequencies HotHybrid = hybridFrequencies(HotFA, HotStatic, &HotTotals);
  Frequencies ColdHybrid =
      hybridFrequencies(ColdFA, ColdStatic, &ColdTotals);

  // hot was executed: hybrid == profile (loop frequency 31).
  NodeId HotPh =
      HotFA.ecfg().preheaderOf(HotFA.intervals().headers().at(0));
  EXPECT_DOUBLE_EQ(HotHybrid.freqOf({HotPh, CfgLabel::U}), 31.0);
  EXPECT_DOUBLE_EQ(HotHybrid.Invocations, 1.0);

  // cold never ran: hybrid == static (its constant trip, 8, not zero).
  NodeId ColdPh =
      ColdFA.ecfg().preheaderOf(ColdFA.intervals().headers().at(0));
  EXPECT_DOUBLE_EQ(ColdHybrid.freqOf({ColdPh, CfgLabel::U}), 8.0);
  EXPECT_DOUBLE_EQ(ColdHybrid.Invocations, 1.0);
}

} // namespace
