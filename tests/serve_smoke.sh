#!/usr/bin/env bash
#===--- tests/serve_smoke.sh - End-to-end daemon smoke test --------------===//
#
# Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
#
# Starts ptran-serve on a scratch Unix socket, drives a short burst of
# mixed estimate/ingest traffic through ptran-bench-client, scrapes the
# stats table, asks the daemon to shut down, and checks that both sides
# exit cleanly. Usage:
#
#   serve_smoke.sh <ptran-serve> <ptran-bench-client> <work-dir>
#
#===----------------------------------------------------------------------===//

set -u

SERVE=$1
CLIENT=$2
WORK=$3

mkdir -p "$WORK"
# Unix socket paths are capped at ~107 bytes; build trees can be deep, so
# fall back to /tmp when the work dir would not fit.
SOCK="$WORK/serve.sock"
if [ ${#SOCK} -ge 100 ]; then
  SOCK=$(mktemp -u /tmp/ptran-serve-XXXXXX.sock)
fi
LOG="$WORK/serve.log"
OUT="$WORK/client.log"
rm -f "$SOCK"

"$SERVE" --socket="$SOCK" --queue-limit=64 >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the listener (the daemon unlinks any stale socket first, so the
# path existing means bind+listen succeeded).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "serve_smoke: daemon never bound $SOCK" >&2
  cat "$LOG" >&2
  kill "$SERVE_PID" 2>/dev/null
  exit 1
fi

"$CLIENT" --socket="$SOCK" --connections=16 --requests=10 --sessions=2 \
  --scrape-stats --shutdown >"$OUT" 2>&1
CLIENT_RC=$?

wait "$SERVE_PID"
SERVE_RC=$?

cat "$OUT"
RC=0
if [ "$CLIENT_RC" -ne 0 ]; then
  echo "serve_smoke: bench client failed (rc=$CLIENT_RC)" >&2
  RC=1
fi
if [ "$SERVE_RC" -ne 0 ]; then
  echo "serve_smoke: daemon exited with rc=$SERVE_RC" >&2
  cat "$LOG" >&2
  RC=1
fi
# The scraped stats table must show the dispatcher's own counters.
for COUNTER in serve.requests serve.estimates serve.ingests serve.loads; do
  if ! grep -q "$COUNTER" "$OUT"; then
    echo "serve_smoke: stats table is missing $COUNTER" >&2
    RC=1
  fi
done
# The daemon must have removed its socket on the way out.
if [ -e "$SOCK" ]; then
  echo "serve_smoke: socket file left behind after shutdown" >&2
  RC=1
fi
exit $RC
