//===--- tests/ir_test.cpp - MiniIR construction and verification ---------===//

#include "cfg/Cfg.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace ptran;

namespace {

TEST(Casting, IsaCastDynCast) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  Expr *I = B.lit(int64_t(4));
  Expr *R = B.lit(2.5);
  EXPECT_TRUE(isa<IntLiteral>(I));
  EXPECT_FALSE(isa<IntLiteral>(R));
  EXPECT_EQ(cast<IntLiteral>(I)->value(), 4);
  EXPECT_EQ(dyn_cast<RealLiteral>(I), nullptr);
  EXPECT_NE(dyn_cast<RealLiteral>(R), nullptr);
}

TEST(Builder, BuildsAndFinalizes) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId N = B.intVar("n");
  VarId X = B.realArray("x", {4});
  B.assign(N, B.lit(4));
  VarId I = B.intVar("i");
  B.doLoop(I, B.lit(1), B.var(N));
  B.assignElem(X, B.var(I), B.mul(B.lit(2.0), B.var(I)));
  B.endDo();
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();
  EXPECT_TRUE(F->isFinalized());
  EXPECT_TRUE(verifyProgram(P, Diags)) << Diags.str();
}

TEST(Builder, ReportsDanglingLabel) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  B.cont();
  B.label(10);
  EXPECT_EQ(B.finish(), nullptr);
  EXPECT_NE(Diags.str().find("dangling label"), std::string::npos);
}

TEST(Builder, ReportsDuplicateVariables) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  B.intVar("x");
  B.realVar("x");
  B.cont();
  B.finish();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(DoStmtTripCount, ConstantAndNonConstant) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId I = B.intVar("i");
  VarId N = B.intVar("n");
  StmtId ConstLoop = B.doLoop(I, B.lit(1), B.lit(10));
  B.endDo();
  StmtId SteppedLoop = B.doLoop(I, B.lit(1), B.lit(10), B.lit(3));
  B.endDo();
  StmtId EmptyLoop = B.doLoop(I, B.lit(5), B.lit(1));
  B.endDo();
  StmtId DynLoop = B.doLoop(I, B.lit(1), B.var(N));
  B.endDo();
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();

  int64_t Trip = -1;
  EXPECT_TRUE(cast<DoStmt>(F->stmt(ConstLoop))->constantTripCount(Trip));
  EXPECT_EQ(Trip, 10);
  EXPECT_TRUE(cast<DoStmt>(F->stmt(SteppedLoop))->constantTripCount(Trip));
  EXPECT_EQ(Trip, 4); // 1, 4, 7, 10.
  EXPECT_TRUE(cast<DoStmt>(F->stmt(EmptyLoop))->constantTripCount(Trip));
  EXPECT_EQ(Trip, 0);
  EXPECT_FALSE(cast<DoStmt>(F->stmt(DynLoop))->constantTripCount(Trip));
}

TEST(Verifier, TypeAnnotationsAndPromotion) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId X = B.realVar("x");
  VarId N = B.intVar("n");
  Expr *Mixed = B.add(B.var(N), B.lit(1.5));
  B.assign(X, Mixed);
  Expr *Cmp = B.lt(B.var(N), B.lit(3));
  B.ifGoto(Cmp, 10);
  B.label(10).cont();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();
  ASSERT_TRUE(verifyProgram(P, Diags)) << Diags.str();
  EXPECT_EQ(Mixed->type(), Type::Real);
  EXPECT_EQ(Cmp->type(), Type::Logical);
}

void expectVerifyError(void (*Build)(FunctionBuilder &),
                       std::string_view Needle) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  Build(B);
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();
  EXPECT_FALSE(verifyProgram(P, Diags));
  EXPECT_NE(Diags.str().find(Needle), std::string::npos)
      << "diagnostics:\n"
      << Diags.str();
}

TEST(Verifier, RejectsArrayUsedAsScalar) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        VarId A = B.realArray("a", {4});
        VarId X = B.realVar("x");
        B.assign(X, B.var(A));
      },
      "used without subscripts");
}

TEST(Verifier, RejectsScalarSubscripts) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        VarId X = B.realVar("x");
        B.assign(X, B.idx(X, B.lit(1)));
      },
      "used with subscripts");
}

TEST(Verifier, RejectsWrongSubscriptCount) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        VarId A = B.realArray("a", {4, 4});
        VarId X = B.realVar("x");
        B.assign(X, B.idx(A, B.lit(1)));
      },
      "expects 2 subscripts");
}

TEST(Verifier, RejectsLogicalAssignment) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        VarId X = B.intVar("x");
        B.assign(X, B.lt(B.lit(1), B.lit(2)));
      },
      "logical");
}

TEST(Verifier, RejectsNonLogicalIfCondition) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        B.ifGoto(B.add(B.lit(1), B.lit(2)), 10);
        B.label(10).cont();
      },
      "IF condition must be logical");
}

TEST(Verifier, RejectsRealDoIndex) {
  expectVerifyError(
      [](FunctionBuilder &B) {
        VarId X = B.realVar("x");
        B.doLoop(X, B.lit(1), B.lit(3));
        B.endDo();
      },
      "must be an integer scalar");
}

TEST(Verifier, RejectsCallToUndefined) {
  expectVerifyError([](FunctionBuilder &B) { B.callSub("nosuch", {}); },
                    "undefined procedure");
}

TEST(Verifier, RejectsScalarForArrayParameter) {
  Program P;
  DiagnosticEngine Diags;
  {
    FunctionBuilder B(P, "callee", Diags);
    B.realArrayParam("a", {4});
    B.ret();
    ASSERT_NE(B.finish(), nullptr);
  }
  {
    FunctionBuilder B(P, "main", Diags);
    VarId X = B.realVar("x");
    B.callSub("callee", {B.var(X)});
    ASSERT_NE(B.finish(), nullptr);
  }
  EXPECT_FALSE(verifyProgram(P, Diags));
  EXPECT_NE(Diags.str().find("whole array"), std::string::npos);
}

TEST(Verifier, RejectsMissingEntry) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "helper", Diags);
  B.ret();
  ASSERT_NE(B.finish(), nullptr);
  EXPECT_FALSE(verifyProgram(P, Diags));
  EXPECT_NE(Diags.str().find("no entry procedure"), std::string::npos);
}

TEST(Printer, RendersStatements) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId N = B.intVar("n");
  VarId A = B.realArray("a", {8});
  B.label(5).assign(N, B.lit(8));
  B.ifGoto(B.logicalAnd(B.ge(B.var(N), B.lit(0)),
                        B.lt(B.var(N), B.lit(9))),
           5);
  B.assignElem(A, B.var(N), B.intrinsic(Intrinsic::Sqrt, {B.lit(2.0)}));
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();

  EXPECT_EQ(printStmt(*F, F->stmt(0)), "n = 8");
  EXPECT_EQ(printStmt(*F, F->stmt(1)),
            "IF (n .GE. 0 .AND. n .LT. 9) GOTO 5");
  EXPECT_EQ(printStmt(*F, F->stmt(2)), "a(n) = SQRT(2.0)");
  std::string Fn = printFunction(*F);
  EXPECT_NE(Fn.find("5 n = 8"), std::string::npos);
  EXPECT_NE(Fn.find("real a(8)"), std::string::npos);
}

TEST(Printer, ParenthesizesByPrecedence) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId X = B.realVar("x");
  // (1 + 2) * 3 needs parens; 1 + 2 * 3 does not.
  B.assign(X, B.mul(B.add(B.lit(1.0), B.lit(2.0)), B.lit(3.0)));
  B.assign(X, B.add(B.lit(1.0), B.mul(B.lit(2.0), B.lit(3.0))));
  // 1 - (2 - 3): right operand of left-associative minus needs parens.
  B.assign(X, B.sub(B.lit(1.0), B.sub(B.lit(2.0), B.lit(3.0))));
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();
  EXPECT_EQ(printStmt(*F, F->stmt(0)), "x = (1.0 + 2.0) * 3.0");
  EXPECT_EQ(printStmt(*F, F->stmt(1)), "x = 1.0 + 2.0 * 3.0");
  EXPECT_EQ(printStmt(*F, F->stmt(2)), "x = 1.0 - (2.0 - 3.0)");
}

TEST(CfgBuild, EdgesFollowStatementSemantics) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId N = B.intVar("n");
  StmtId S0 = B.assign(N, B.lit(0));
  StmtId If = B.ifGoto(B.lt(B.var(N), B.lit(3)), 20);
  StmtId Ret = B.ret();
  StmtId Cont = B.label(20).cont();
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();

  Cfg C = buildCfg(*F);
  EXPECT_EQ(C.entry(), C.nodeForStmt(S0));
  EXPECT_NE(C.graph().findEdge(C.nodeForStmt(If), C.nodeForStmt(Cont),
                               static_cast<LabelId>(CfgLabel::T)),
            InvalidEdge);
  EXPECT_NE(C.graph().findEdge(C.nodeForStmt(If), C.nodeForStmt(Ret),
                               static_cast<LabelId>(CfgLabel::F)),
            InvalidEdge);
  // RETURN and the trailing CONTINUE are both procedure exits.
  EXPECT_EQ(C.exitBranches().size(), 2u);
}

TEST(CfgBuild, GotoElisionRedirectsEdges) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  VarId N = B.intVar("n");
  B.assign(N, B.lit(0));
  StmtId Jump = B.gotoLabel(30);
  B.label(20).cont();
  StmtId Target = B.label(30).assign(N, B.lit(1));
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();

  Cfg C = buildCfg(*F);
  unsigned Elided = elideGotoNodes(C);
  EXPECT_EQ(Elided, 1u);
  NodeId GotoNode = C.nodeForStmt(Jump);
  EXPECT_EQ(C.graph().outDegree(GotoNode), 0u);
  EXPECT_EQ(C.graph().inDegree(GotoNode), 0u);
  // The assignment now flows straight to the target.
  EXPECT_NE(C.graph().findEdge(0, C.nodeForStmt(Target),
                               static_cast<LabelId>(CfgLabel::U)),
            InvalidEdge);
}

TEST(CfgBuild, SelfLoopGotoIsKept) {
  Program P;
  DiagnosticEngine Diags;
  FunctionBuilder B(P, "main", Diags);
  B.label(10).gotoLabel(10);
  Function *F = B.finish();
  ASSERT_NE(F, nullptr) << Diags.str();
  Cfg C = buildCfg(*F);
  EXPECT_EQ(elideGotoNodes(C), 0u);
}

} // namespace
