//===--- tests/serve_test.cpp - Daemon core and protocol tests ------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the ptran-serve core with no socket in sight: the frame
/// codec round-trips (including binary bodies) and rejects malformed
/// frames, ServeCore dispatches every verb, per-request budgets degrade or
/// fail per policy, LRU eviction enforces the memory budget, and — the
/// point of the file — many threads hammering one ServeCore concurrently
/// get responses byte-identical to a single-threaded reference run. The
/// tsan preset reruns this binary under ThreadSanitizer, which is what
/// actually certifies the locking.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Wire.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::serve;

namespace {

/// Enough structure for real estimates (calls, loops, a branch) while one
/// request stays well under a millisecond.
const char *TinySource = R"(      program main
      integer i, n
      n = 16
      do 10 i = 1, n
        call leaf(i)
 10   continue
      end
      subroutine leaf(k)
      integer k, j
      real s
      s = 0
      do 20 j = 1, 4
        if (s .gt. 10) then
          s = s - 10
        else
          s = s + j * k
        endif
 20   continue
      end
)";

WireMessage makeRequest(const std::string &Verb, const std::string &Session) {
  WireMessage M;
  M.Verb = Verb;
  if (!Session.empty())
    M.Params["session"] = Session;
  return M;
}

/// load-program + one profiled run for \p Session on \p Core.
void loadAndRun(ServeCore &Core, const std::string &Session) {
  WireMessage Load = makeRequest("load-program", Session);
  Load.Body = TinySource;
  WireMessage Resp = Core.handle(Load);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  Resp = Core.handle(makeRequest("run", Session));
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
}

} // namespace

//===--- Frame codec ------------------------------------------------------===//

TEST(Protocol, RoundTripsVerbParamsAndBinaryBody) {
  WireMessage M;
  M.Verb = "ingest-profile";
  M.Params["session"] = "s0";
  M.Params["note"] = "values may contain = signs = twice";
  M.Body = std::string("\x00\x01\xff\n\x7f junk", 9); // Binary, with NUL.

  std::string Error;
  std::optional<std::vector<uint8_t>> Bytes = encodeFrame(M, Error);
  ASSERT_TRUE(Bytes) << Error;
  std::optional<WireMessage> Back =
      decodeFrame(Bytes->data(), Bytes->size(), Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->Verb, M.Verb);
  EXPECT_EQ(Back->Params, M.Params);
  EXPECT_EQ(Back->Body, M.Body);
}

TEST(Protocol, RoundTripsEmptyParamsAndEmptyBody) {
  WireMessage M;
  M.Verb = "ping";
  std::string Error;
  std::optional<std::vector<uint8_t>> Bytes = encodeFrame(M, Error);
  ASSERT_TRUE(Bytes) << Error;
  std::optional<WireMessage> Back =
      decodeFrame(Bytes->data(), Bytes->size(), Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->Verb, "ping");
  EXPECT_TRUE(Back->Params.empty());
  EXPECT_TRUE(Back->Body.empty());
}

TEST(Protocol, RejectsUnframeableMessages) {
  std::string Error;
  WireMessage M;
  M.Verb = "two\nlines";
  EXPECT_FALSE(encodeFrame(M, Error));

  M.Verb = "ok";
  M.Params["key"] = "line1\nline2"; // Newline in a value corrupts framing.
  EXPECT_FALSE(encodeFrame(M, Error));

  M.Params.clear();
  M.Params["bad=key"] = "v"; // '=' in a key shifts the value split.
  EXPECT_FALSE(encodeFrame(M, Error));
}

TEST(Protocol, RejectsMalformedFrames) {
  std::string Error;
  // Too short for the header-length field.
  EXPECT_FALSE(decodeFrame(reinterpret_cast<const uint8_t *>("ab"), 2, Error));
  // Header length pointing past the payload.
  uint8_t Lie[8] = {0xff, 0xff, 0, 0, 'p', 'i', 'n', 'g'};
  EXPECT_FALSE(decodeFrame(Lie, sizeof(Lie), Error));
  // Parameter line without '='.
  WireMessage M;
  M.Verb = "ok";
  std::optional<std::vector<uint8_t>> Bytes = encodeFrame(M, Error);
  ASSERT_TRUE(Bytes);
  std::string Garbled = "ok\nnot-a-pair";
  std::vector<uint8_t> Frame = {static_cast<uint8_t>(Garbled.size()), 0, 0, 0};
  Frame.insert(Frame.end(), Garbled.begin(), Garbled.end());
  EXPECT_FALSE(decodeFrame(Frame.data(), Frame.size(), Error));
  EXPECT_NE(Error.find("key=value"), std::string::npos);
}

//===--- ServeCore dispatch -----------------------------------------------===//

TEST(ServeCoreTest, LoadRunEstimateCaptureIngest) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  WireMessage Est = Core.handle(makeRequest("estimate", "s0"));
  ASSERT_EQ(Est.Verb, "ok") << Est.param("message");
  EXPECT_EQ(Est.param("function"), "main");
  EXPECT_EQ(Est.param("degraded"), "0");
  double Time = std::stod(Est.param("time"));
  EXPECT_GT(Time, 0.0);

  // estimate on a named function.
  WireMessage EstLeaf = makeRequest("estimate", "s0");
  EstLeaf.Params["function"] = "leaf";
  WireMessage LeafResp = Core.handle(EstLeaf);
  ASSERT_EQ(LeafResp.Verb, "ok");
  EXPECT_EQ(LeafResp.param("function"), "leaf");
  EXPECT_LT(std::stod(LeafResp.param("time")), Time);

  // capture-profile emits a parseable body; re-ingesting it doubles the
  // accumulated totals, which leaves the *average* estimate unchanged.
  WireMessage Cap = Core.handle(makeRequest("capture-profile", "s0"));
  ASSERT_EQ(Cap.Verb, "ok");
  ASSERT_FALSE(Cap.Body.empty());
  WireMessage Ingest = makeRequest("ingest-profile", "s0");
  Ingest.Body = Cap.Body;
  WireMessage IngResp = Core.handle(Ingest);
  ASSERT_EQ(IngResp.Verb, "ok") << IngResp.param("message");
  EXPECT_EQ(IngResp.param("accepted"), "2");
  EXPECT_EQ(IngResp.param("quarantined"), "0");

  WireMessage Est2 = Core.handle(makeRequest("estimate", "s0"));
  ASSERT_EQ(Est2.Verb, "ok");
  EXPECT_EQ(Est2.param("time"), Est.param("time"));
}

TEST(ServeCoreTest, EstimateBatchRoundTripsAndMatchesSingleEstimates) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  // Reference: two single estimates.
  WireMessage EstMain = makeRequest("estimate", "s0");
  EstMain.Params["function"] = "main";
  WireMessage MainResp = Core.handle(EstMain);
  ASSERT_EQ(MainResp.Verb, "ok") << MainResp.param("message");
  WireMessage EstLeaf = makeRequest("estimate", "s0");
  EstLeaf.Params["function"] = "leaf";
  WireMessage LeafResp = Core.handle(EstLeaf);
  ASSERT_EQ(LeafResp.Verb, "ok") << LeafResp.param("message");

  // The batch goes through the frame codec (indexed params survive the
  // wire) before it reaches the core.
  WireMessage Batch = makeRequest("estimate-batch", "s0");
  Batch.Params["count"] = "2";
  Batch.Params["function.0"] = "main";
  Batch.Params["function.1"] = "leaf";
  std::string Error;
  std::optional<std::vector<uint8_t>> Frame = encodeFrame(Batch, Error);
  ASSERT_TRUE(Frame) << Error;
  std::optional<WireMessage> Decoded =
      decodeFrame(Frame->data(), Frame->size(), Error);
  ASSERT_TRUE(Decoded) << Error;
  ASSERT_EQ(Decoded->Params, Batch.Params);

  WireMessage Resp = Core.handle(*Decoded);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  EXPECT_EQ(Resp.param("count"), "2");
  EXPECT_EQ(Resp.param("failed"), "0");
  EXPECT_EQ(Resp.param("ok.0"), "1");
  EXPECT_EQ(Resp.param("ok.1"), "1");
  EXPECT_EQ(Resp.param("function.0"), "main");
  EXPECT_EQ(Resp.param("function.1"), "leaf");
  // Full-precision rendering: the batch answers are byte-identical to the
  // single-estimate responses.
  for (const char *Key : {"time", "var", "stddev", "degraded",
                          "quarantined"}) {
    EXPECT_EQ(Resp.param(std::string(Key) + ".0"), MainResp.param(Key))
        << Key;
    EXPECT_EQ(Resp.param(std::string(Key) + ".1"), LeafResp.param(Key))
        << Key;
  }

  // The response itself round-trips the codec too.
  std::optional<std::vector<uint8_t>> RespFrame = encodeFrame(Resp, Error);
  ASSERT_TRUE(RespFrame) << Error;
  std::optional<WireMessage> RespBack =
      decodeFrame(RespFrame->data(), RespFrame->size(), Error);
  ASSERT_TRUE(RespBack) << Error;
  EXPECT_EQ(RespBack->Params, Resp.Params);
}

TEST(ServeCoreTest, EstimateBatchReportsPerItemFailures) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  WireMessage Batch = makeRequest("estimate-batch", "s0");
  Batch.Params["count"] = "3";
  Batch.Params["function.0"] = "leaf";
  Batch.Params["function.1"] = "nosuchfn";
  Batch.Params["function.2"] = "main";
  WireMessage Resp = Core.handle(Batch);
  // One bad function does not discard its batch-mates' answers.
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  EXPECT_EQ(Resp.param("count"), "3");
  EXPECT_EQ(Resp.param("failed"), "1");
  EXPECT_EQ(Resp.param("ok.0"), "1");
  EXPECT_EQ(Resp.param("ok.1"), "0");
  EXPECT_EQ(Resp.param("ok.2"), "1");
  EXPECT_EQ(Resp.param("error-code.1"), "estimate-failed");
  EXPECT_NE(Resp.param("error.1").find("nosuchfn"), std::string::npos)
      << Resp.param("error.1");
  EXPECT_FALSE(Resp.hasParam("time.1"));
  EXPECT_GT(std::stod(Resp.param("time.2")), 0.0);
}

TEST(ServeCoreTest, EstimateBatchValidatesItsShape) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  // Missing / zero / garbage count.
  for (const char *Count : {"", "0", "three"}) {
    WireMessage Batch = makeRequest("estimate-batch", "s0");
    if (*Count)
      Batch.Params["count"] = Count;
    WireMessage Resp = Core.handle(Batch);
    EXPECT_EQ(Resp.Verb, "error") << Count;
    EXPECT_EQ(Resp.param("code"), "bad-request") << Count;
  }

  // count promises more slots than were sent.
  WireMessage Short = makeRequest("estimate-batch", "s0");
  Short.Params["count"] = "2";
  Short.Params["function.0"] = "main";
  WireMessage Resp = Core.handle(Short);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_NE(Resp.param("message").find("function.1"), std::string::npos)
      << Resp.param("message");

  // count disagreeing with the keys actually sent: indexed parameters at
  // or past count mean the client dropped requests on the floor (or
  // miscounted); silently ignoring them would answer a different batch
  // than the one sent. Regression: these used to be silently ignored.
  WireMessage Extra = makeRequest("estimate-batch", "s0");
  Extra.Params["count"] = "1";
  Extra.Params["function.0"] = "main";
  Extra.Params["function.2"] = "leaf";
  Resp = Core.handle(Extra);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");
  EXPECT_NE(Resp.param("message").find("function.2"), std::string::npos)
      << Resp.param("message");
  EXPECT_NE(Resp.param("message").find("disagrees"), std::string::npos)
      << Resp.param("message");

  // Same for a stray per-index override and for a garbled index.
  WireMessage StrayLV = makeRequest("estimate-batch", "s0");
  StrayLV.Params["count"] = "1";
  StrayLV.Params["function.0"] = "main";
  StrayLV.Params["loop-variance.7"] = "zero";
  Resp = Core.handle(StrayLV);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");
  EXPECT_NE(Resp.param("message").find("loop-variance.7"), std::string::npos)
      << Resp.param("message");

  WireMessage BadIdx = makeRequest("estimate-batch", "s0");
  BadIdx.Params["count"] = "1";
  BadIdx.Params["function.0"] = "main";
  BadIdx.Params["function.x"] = "leaf";
  Resp = Core.handle(BadIdx);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");

  // Per-index loop-variance is validated like the single-estimate one.
  WireMessage BadLV = makeRequest("estimate-batch", "s0");
  BadLV.Params["count"] = "1";
  BadLV.Params["function.0"] = "main";
  BadLV.Params["loop-variance.0"] = "sideways";
  Resp = Core.handle(BadLV);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");

  // Unknown session fails before any parsing.
  WireMessage NoSession = makeRequest("estimate-batch", "nowhere");
  NoSession.Params["count"] = "1";
  NoSession.Params["function.0"] = "main";
  Resp = Core.handle(NoSession);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "unknown-session");
}

TEST(ServeCoreTest, ErrorsAreStructured) {
  ServeOptions Opts;
  ServeCore Core(Opts);

  WireMessage R = Core.handle(makeRequest("estimate", "nope"));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_EQ(R.param("code"), "unknown-session");

  R = Core.handle(makeRequest("no-such-verb", ""));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_EQ(R.param("code"), "bad-request");

  WireMessage Load = makeRequest("load-program", "bad");
  Load.Body = "      program main\n      this is not a statement\n      end\n";
  R = Core.handle(Load);
  EXPECT_EQ(R.Verb, "error");
  EXPECT_EQ(R.param("code"), "bad-program");

  WireMessage Ing = makeRequest("ingest-profile", "bad2");
  R = Core.handle(Ing);
  EXPECT_EQ(R.param("code"), "unknown-session");

  // Garbage profile bytes on a real session.
  ServeCore Core2{ServeOptions()};
  {
    WireMessage Load2 = makeRequest("load-program", "s");
    Load2.Body = TinySource;
    ASSERT_EQ(Core2.handle(Load2).Verb, "ok");
    WireMessage Bad = makeRequest("ingest-profile", "s");
    Bad.Body = "not a PTPF image";
    R = Core2.handle(Bad);
    EXPECT_EQ(R.Verb, "error");
    EXPECT_EQ(R.param("code"), "bad-profile");
  }
}

TEST(ServeCoreTest, StepBudgetDegradesUnderDegradePolicy) {
  ServeOptions Opts; // Daemon default: Degrade.
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  // A one-step budget trips during input refresh; under Degrade the
  // answer arrives tagged instead of erroring. Step budgets are
  // deterministic, so this is stable in CI where wall clocks are not.
  WireMessage Est = makeRequest("estimate", "s0");
  Est.Params["step-budget"] = "1";
  WireMessage R = Core.handle(Est);
  ASSERT_EQ(R.Verb, "ok") << R.param("message");
  EXPECT_EQ(R.param("degraded"), "1");
  EXPECT_NE(R.param("degrade-reason").find("step budget"), std::string::npos);

  // The next unbudgeted query lifts the degradation and recomputes
  // exactly: same answer as a never-degraded session.
  WireMessage Clean = Core.handle(makeRequest("estimate", "s0"));
  ASSERT_EQ(Clean.Verb, "ok");
  EXPECT_EQ(Clean.param("degraded"), "0");

  ServeCore Ref{ServeOptions()};
  loadAndRun(Ref, "s0");
  WireMessage RefResp = Ref.handle(makeRequest("estimate", "s0"));
  EXPECT_EQ(Clean.param("time"), RefResp.param("time"));
  EXPECT_EQ(Clean.param("var"), RefResp.param("var"));
}

TEST(ServeCoreTest, StepBudgetFailsUnderFailPolicy) {
  ServeOptions Opts;
  Opts.OnDeadline = DeadlinePolicy::Fail;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  WireMessage Est = makeRequest("estimate", "s0");
  Est.Params["step-budget"] = "1";
  WireMessage R = Core.handle(Est);
  EXPECT_EQ(R.Verb, "error");
  EXPECT_EQ(R.param("code"), "timeout");
  EXPECT_NE(R.param("message").find("timeout:"), std::string::npos);
}

TEST(ServeCoreTest, DefaultStepBudgetActsAsBackstop) {
  ServeOptions Opts;
  Opts.DefaultStepBudget = 1; // Absurdly tight daemon-wide default.
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");
  WireMessage R = Core.handle(makeRequest("estimate", "s0"));
  ASSERT_EQ(R.Verb, "ok");
  EXPECT_EQ(R.param("degraded"), "1");

  // An explicit per-request budget overrides the daemon default.
  WireMessage Est = makeRequest("estimate", "s0");
  Est.Params["step-budget"] = "1000000";
  R = Core.handle(Est);
  ASSERT_EQ(R.Verb, "ok");
  EXPECT_EQ(R.param("degraded"), "0");
}

//===--- LRU eviction -----------------------------------------------------===//

TEST(ServeCoreTest, LruEvictionHoldsTheSessionCap) {
  ServeOptions Opts;
  Opts.MaxSessions = 2;
  ServeCore Core(Opts);
  loadAndRun(Core, "a");
  loadAndRun(Core, "b");
  EXPECT_EQ(Core.sessionCount(), 2u);

  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_EQ(Core.handle(makeRequest("estimate", "a")).Verb, "ok");
  loadAndRun(Core, "c");
  EXPECT_EQ(Core.sessionCount(), 2u);
  EXPECT_EQ(Core.handle(makeRequest("estimate", "a")).Verb, "ok");
  EXPECT_EQ(Core.handle(makeRequest("estimate", "c")).Verb, "ok");
  WireMessage R = Core.handle(makeRequest("estimate", "b"));
  EXPECT_EQ(R.Verb, "error");
  EXPECT_EQ(R.param("code"), "unknown-session");
}

TEST(ServeCoreTest, MemoryBudgetEvictsByBytes) {
  ServeOptions Opts;
  ServeCore Probe{ServeOptions()};
  // Learn one session's heuristic charge, then budget for about two.
  {
    WireMessage Load = makeRequest("load-program", "probe");
    Load.Body = TinySource;
    WireMessage R = Probe.handle(Load);
    ASSERT_EQ(R.Verb, "ok");
    Opts.MemoryBudgetBytes = 2 * std::stoull(R.param("memory-bytes")) + 1024;
  }
  ServeCore Core(Opts);
  loadAndRun(Core, "a");
  loadAndRun(Core, "b");
  EXPECT_EQ(Core.sessionCount(), 2u);
  EXPECT_LE(Core.residentBytes(), Opts.MemoryBudgetBytes);
  loadAndRun(Core, "c");
  EXPECT_EQ(Core.sessionCount(), 2u);
  EXPECT_LE(Core.residentBytes(), Opts.MemoryBudgetBytes);
  // The oldest ("a") was the victim.
  EXPECT_EQ(Core.handle(makeRequest("estimate", "a")).param("code"),
            "unknown-session");
}

//===--- Concurrency vs single-threaded reference -------------------------===//

TEST(ServeCoreTest, ConcurrentEstimatesMatchSerialReferenceExactly) {
  // Reference: one core, one thread.
  ServeCore Ref{ServeOptions()};
  loadAndRun(Ref, "s0");
  WireMessage RefMain = Ref.handle(makeRequest("estimate", "s0"));
  WireMessage EstLeafReq = makeRequest("estimate", "s0");
  EstLeafReq.Params["function"] = "leaf";
  WireMessage RefLeaf = Ref.handle(EstLeafReq);
  ASSERT_EQ(RefMain.Verb, "ok");
  ASSERT_EQ(RefLeaf.Verb, "ok");

  // Subject: many threads, two sessions, interleaved queries. Every
  // response must be byte-identical to the reference (full %.17g
  // precision, so "close" is not good enough).
  ServeCore Core{ServeOptions()};
  loadAndRun(Core, "s0");
  loadAndRun(Core, "s1");
  constexpr unsigned Threads = 8, PerThread = 25;
  std::vector<std::string> Bad(Threads);
  {
    std::vector<std::jthread> Pool;
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back([&, T] {
        for (unsigned I = 0; I < PerThread; ++I) {
          WireMessage Req = makeRequest("estimate", I % 2 ? "s0" : "s1");
          const WireMessage &Want = (T + I) % 2 ? RefMain : RefLeaf;
          if ((T + I) % 2 == 0)
            Req.Params["function"] = "leaf";
          WireMessage Got = Core.handle(Req);
          if (Got.Verb != "ok" || Got.param("time") != Want.param("time") ||
              Got.param("var") != Want.param("var") ||
              Got.param("stddev") != Want.param("stddev")) {
            Bad[T] = "thread " + std::to_string(T) + " request " +
                     std::to_string(I) + ": got " + Got.param("time") +
                     "/" + Got.param("var") + " want " + Want.param("time") +
                     "/" + Want.param("var");
            return;
          }
        }
      });
  }
  for (const std::string &Msg : Bad)
    EXPECT_TRUE(Msg.empty()) << Msg;
}

TEST(ServeCoreTest, ConcurrentIngestsAccumulateLikeSerialIngests) {
  // Ingest is additive and serialized per session: N concurrent ingests of
  // the same profile must land the session in exactly the state N serial
  // ingests produce.
  ServeCore Core{ServeOptions()};
  loadAndRun(Core, "s0");
  WireMessage Cap = Core.handle(makeRequest("capture-profile", "s0"));
  ASSERT_EQ(Cap.Verb, "ok");

  constexpr unsigned Ingesters = 6, Estimators = 4, PerThread = 10;
  std::atomic<unsigned> Failures{0};
  {
    std::vector<std::jthread> Pool;
    for (unsigned T = 0; T < Ingesters; ++T)
      Pool.emplace_back([&] {
        for (unsigned I = 0; I < PerThread; ++I) {
          WireMessage Req = makeRequest("ingest-profile", "s0");
          Req.Body = Cap.Body;
          WireMessage R = Core.handle(Req);
          if (R.Verb != "ok" || R.param("accepted") != "2")
            Failures.fetch_add(1);
        }
      });
    // Concurrent estimates must always see *some* consistent state — no
    // torn reads, no errors — while the ingests land.
    for (unsigned T = 0; T < Estimators; ++T)
      Pool.emplace_back([&] {
        for (unsigned I = 0; I < PerThread; ++I)
          if (Core.handle(makeRequest("estimate", "s0")).Verb != "ok")
            Failures.fetch_add(1);
      });
  }
  EXPECT_EQ(Failures.load(), 0u);

  // Reference: the same number of ingests, serially.
  ServeCore Ref{ServeOptions()};
  loadAndRun(Ref, "s0");
  WireMessage RefCap = Ref.handle(makeRequest("capture-profile", "s0"));
  ASSERT_EQ(RefCap.Verb, "ok");
  ASSERT_EQ(RefCap.Body, Cap.Body) << "profile capture is not deterministic";
  for (unsigned I = 0; I < Ingesters * PerThread; ++I) {
    WireMessage Req = makeRequest("ingest-profile", "s0");
    Req.Body = RefCap.Body;
    ASSERT_EQ(Ref.handle(Req).Verb, "ok");
  }
  WireMessage Got = Core.handle(makeRequest("estimate", "s0"));
  WireMessage Want = Ref.handle(makeRequest("estimate", "s0"));
  ASSERT_EQ(Got.Verb, "ok");
  EXPECT_EQ(Got.param("time"), Want.param("time"));
  EXPECT_EQ(Got.param("var"), Want.param("var"));
}

TEST(ServeCoreTest, ConcurrentLoadsEvictionsAndQueriesStayCoherent) {
  // Eviction stress: a 3-session cap with 6 session names cycling through
  // loads, runs and estimates from many threads. Responses may be
  // unknown-session (the name was just evicted) but never torn or
  // malformed, and the registry must respect the cap throughout.
  ServeOptions Opts;
  Opts.MaxSessions = 3;
  ServeCore Core(Opts);
  std::atomic<unsigned> Failures{0};
  {
    std::vector<std::jthread> Pool;
    for (unsigned T = 0; T < 6; ++T)
      Pool.emplace_back([&, T] {
        std::string Name = "s" + std::to_string(T);
        for (unsigned I = 0; I < 8; ++I) {
          WireMessage Load = makeRequest("load-program", Name);
          Load.Body = TinySource;
          if (Core.handle(Load).Verb != "ok")
            Failures.fetch_add(1);
          for (unsigned Q = 0; Q < 3; ++Q) {
            WireMessage R = Core.handle(makeRequest("estimate", Name));
            bool Ok = R.Verb == "ok" ||
                      (R.Verb == "error" &&
                       R.param("code") == "unknown-session");
            if (!Ok)
              Failures.fetch_add(1);
          }
        }
      });
  }
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_LE(Core.sessionCount(), 3u);
}

//===--- Wire transport: mid-frame peer closes ----------------------------===//

namespace {

/// Writes \p Size bytes to \p Fd and closes it, simulating a peer that
/// dies mid-frame.
void writeThenClose(int Fd, const void *Data, size_t Size) {
  ASSERT_EQ(::send(Fd, Data, Size, MSG_NOSIGNAL),
            static_cast<ssize_t>(Size));
  ::close(Fd);
}

} // namespace

TEST(WireTest, CleanEofBetweenFramesIsNotAnError) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ::close(Fds[0]); // Peer hangs up without sending a byte.
  WireMessage M;
  std::string Error;
  EXPECT_EQ(readFrame(Fds[1], M, Error), 0);
  EXPECT_TRUE(Error.empty()) << Error;
  ::close(Fds[1]);
}

TEST(WireTest, PeerClosingInsideLengthPrefixIsATruncatedFrame) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // Regression: a peer dying after 2 of the 4 length-prefix bytes used to
  // surface as a bare read failure; it must name what was cut short.
  const uint8_t Half[2] = {0x10, 0x00};
  writeThenClose(Fds[0], Half, sizeof(Half));
  WireMessage M;
  std::string Error;
  EXPECT_EQ(readFrame(Fds[1], M, Error), -1);
  EXPECT_NE(Error.find("truncated frame"), std::string::npos) << Error;
  EXPECT_NE(Error.find("2 of 4"), std::string::npos) << Error;
  EXPECT_NE(Error.find("length-prefix"), std::string::npos) << Error;
  ::close(Fds[1]);
}

TEST(WireTest, PeerClosingInsidePayloadIsATruncatedFrame) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A full prefix promising 10 payload bytes, then only 3 arrive. The
  // partially-filled buffer must NOT reach the codec (which could
  // misparse a half-written header as a shorter valid frame).
  uint8_t Bytes[4 + 3] = {10, 0, 0, 0, 'o', 'k', '\n'};
  writeThenClose(Fds[0], Bytes, sizeof(Bytes));
  WireMessage M;
  std::string Error;
  EXPECT_EQ(readFrame(Fds[1], M, Error), -1);
  EXPECT_NE(Error.find("truncated frame"), std::string::npos) << Error;
  EXPECT_NE(Error.find("3 of 10 payload bytes"), std::string::npos) << Error;
  ::close(Fds[1]);
}

TEST(WireTest, PeerClosingAfterPrefixAloneIsATruncatedFrame) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // EOF exactly on the payload boundary: the prefix promised bytes that
  // never came, which is a truncated frame, not a clean hang-up.
  const uint8_t Prefix[4] = {5, 0, 0, 0};
  writeThenClose(Fds[0], Prefix, sizeof(Prefix));
  WireMessage M;
  std::string Error;
  EXPECT_EQ(readFrame(Fds[1], M, Error), -1);
  EXPECT_NE(Error.find("truncated frame"), std::string::npos) << Error;
  EXPECT_NE(Error.find("0 of 5 payload bytes"), std::string::npos) << Error;
  ::close(Fds[1]);
}

TEST(WireTest, WholeFramesRoundTripOverASocketPair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  WireMessage M;
  M.Verb = "estimate";
  M.Params["session"] = "s0";
  M.Body = std::string("\x00\x01payload", 9);
  std::string Error;
  ASSERT_TRUE(writeFrame(Fds[0], M, Error)) << Error;
  ::close(Fds[0]);
  WireMessage Back;
  ASSERT_EQ(readFrame(Fds[1], Back, Error), 1) << Error;
  EXPECT_EQ(Back.Verb, M.Verb);
  EXPECT_EQ(Back.Params, M.Params);
  EXPECT_EQ(Back.Body, M.Body);
  // And the hang-up after the frame is still a clean EOF.
  EXPECT_EQ(readFrame(Fds[1], Back, Error), 0);
  ::close(Fds[1]);
}

TEST(WireTest, WritingToAClosedPeerFailsInsteadOfRaisingSigpipe) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ::close(Fds[1]); // Peer gone: an unsuppressed SIGPIPE would kill us here.
  WireMessage M;
  M.Verb = "estimate";
  M.Body = std::string(4096, 'x');
  std::string Error;
  bool Ok = writeFrame(Fds[0], M, Error);
  for (int I = 0; Ok && I < 64; ++I) // Drain the buffer until EPIPE.
    Ok = writeFrame(Fds[0], M, Error);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Error.empty());
  ::close(Fds[0]);
}

TEST(WireTest, ListenProbesLivenessBeforeRemovingAnExistingSocket) {
  std::string Path =
      "/tmp/ptran-wire-live-" + std::to_string(::getpid()) + ".sock";
  ::unlink(Path.c_str());
  std::string Error;

  // A live listener on the path must be refused, not unlinked.
  int Live = listenUnix(Path, Error);
  ASSERT_GE(Live, 0) << Error;
  EXPECT_EQ(listenUnix(Path, Error), -1);
  EXPECT_NE(Error.find("already listening"), std::string::npos) << Error;
  // ... and the original listener still owns the path.
  int Probe = connectUnix(Path, Error);
  EXPECT_GE(Probe, 0) << Error;
  if (Probe >= 0)
    ::close(Probe);
  ::close(Live);

  // Once the listener is gone the socket file is stale; a new daemon
  // reclaims the path.
  int Reclaimed = listenUnix(Path, Error);
  EXPECT_GE(Reclaimed, 0) << Error;
  if (Reclaimed >= 0)
    ::close(Reclaimed);
  ::unlink(Path.c_str());

  // A plain file at the path is never unlinked, whatever its state.
  int Fd = ::open(Path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(Fd, 0);
  ::close(Fd);
  EXPECT_EQ(listenUnix(Path, Error), -1);
  EXPECT_NE(Error.find("not a socket"), std::string::npos) << Error;
  struct stat St;
  EXPECT_EQ(::stat(Path.c_str(), &St), 0); // Still there.
  ::unlink(Path.c_str());
}

//===--- stream-deltas verb -----------------------------------------------===//

namespace {

/// Appends one 16-byte little-endian stream record to \p Body.
void appendRecord(std::string &Body, uint32_t FuncIdx, uint32_t CondIdx,
                  double Delta) {
  auto PutU32 = [&Body](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Body.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  PutU32(FuncIdx);
  PutU32(CondIdx);
  uint64_t Bits;
  std::memcpy(&Bits, &Delta, sizeof(Bits));
  for (int I = 0; I < 8; ++I)
    Body.push_back(static_cast<char>((Bits >> (8 * I)) & 0xff));
}

/// Runs describe on \p Session and returns the stream index of \p Fn.
unsigned describeFunctionIndex(ServeCore &Core, const std::string &Session,
                               const std::string &Fn) {
  WireMessage Desc = makeRequest("stream-deltas", Session);
  Desc.Params["describe"] = "1";
  WireMessage Resp = Core.handle(Desc);
  EXPECT_EQ(Resp.Verb, "ok") << Resp.param("message");
  unsigned N = static_cast<unsigned>(std::stoul(Resp.param("functions")));
  for (unsigned I = 0; I < N; ++I)
    if (Resp.param("function." + std::to_string(I)) == Fn) {
      EXPECT_GT(std::stoul(Resp.param("conditions." + std::to_string(I))),
                0u);
      return I;
    }
  ADD_FAILURE() << "function " << Fn << " not in stream describe";
  return N;
}

} // namespace

TEST(ServeCoreTest, StreamDeltasDescribeAppendFlushChangesEstimates) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");
  loadAndRun(Core, "s1");

  WireMessage Before = Core.handle([&] {
    WireMessage E = makeRequest("estimate", "s0");
    E.Params["function"] = "leaf";
    return E;
  }());
  ASSERT_EQ(Before.Verb, "ok") << Before.param("message");

  unsigned Leaf0 = describeFunctionIndex(Core, "s0", "leaf");
  unsigned Leaf1 = describeFunctionIndex(Core, "s1", "leaf");
  ASSERT_EQ(Leaf0, Leaf1); // Same program, same stream order.

  // Stream the same deltas into both sessions and flush: the folds must
  // be deterministic, so the two sessions answer byte-identically.
  for (const char *Session : {"s0", "s1"}) {
    WireMessage Ing = makeRequest("stream-deltas", Session);
    for (int I = 0; I < 8; ++I)
      appendRecord(Ing.Body, Leaf0, 0, 2.0);
    Ing.Params["flush"] = "1";
    WireMessage Resp = Core.handle(Ing);
    ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
    EXPECT_EQ(Resp.param("appended"), "8");
    EXPECT_EQ(Resp.param("dropped"), "0");
    EXPECT_EQ(Resp.param("flushed-cells"), "1");
    EXPECT_EQ(Resp.param("flushed-functions"), "1");
    EXPECT_EQ(Resp.param("epoch"), "0");
  }

  WireMessage EstLeaf = makeRequest("estimate", "s0");
  EstLeaf.Params["function"] = "leaf";
  WireMessage After = Core.handle(EstLeaf);
  ASSERT_EQ(After.Verb, "ok") << After.param("message");
  // The streamed invocation deltas reached the estimator.
  EXPECT_NE(After.param("time"), Before.param("time"));

  WireMessage EstLeaf1 = makeRequest("estimate", "s1");
  EstLeaf1.Params["function"] = "leaf";
  WireMessage After1 = Core.handle(EstLeaf1);
  ASSERT_EQ(After1.Verb, "ok") << After1.param("message");
  for (const char *Key : {"time", "var", "stddev"})
    EXPECT_EQ(After.param(Key), After1.param(Key)) << Key;
}

TEST(ServeCoreTest, StreamDeltasValidatesBodyAndRecords) {
  ServeOptions Opts;
  ServeCore Core(Opts);
  loadAndRun(Core, "s0");

  // Unknown session first.
  WireMessage NoS = makeRequest("stream-deltas", "nowhere");
  WireMessage Resp = Core.handle(NoS);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "unknown-session");

  // A body that is not a whole number of records is rejected outright.
  WireMessage Ragged = makeRequest("stream-deltas", "s0");
  Ragged.Body = std::string(7, '\0');
  Resp = Core.handle(Ragged);
  EXPECT_EQ(Resp.Verb, "error");
  EXPECT_EQ(Resp.param("code"), "bad-request");
  EXPECT_NE(Resp.param("message").find("16"), std::string::npos)
      << Resp.param("message");

  // Records with bad indices or bad values are dropped (and counted),
  // while their batch-mates land.
  unsigned Leaf = describeFunctionIndex(Core, "s0", "leaf");
  WireMessage Mixed = makeRequest("stream-deltas", "s0");
  appendRecord(Mixed.Body, Leaf, 0, 1.0);
  appendRecord(Mixed.Body, 9999, 0, 1.0);     // No such function row.
  appendRecord(Mixed.Body, Leaf, 9999, 1.0);  // No such condition cell.
  appendRecord(Mixed.Body, Leaf, 0, -3.0);    // Negative count.
  Mixed.Params["flush"] = "1";
  Resp = Core.handle(Mixed);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  EXPECT_EQ(Resp.param("appended"), "1");
  EXPECT_EQ(Resp.param("dropped"), "3");
  EXPECT_EQ(Resp.param("flushed-cells"), "1");

  // An append-free flush still seals an epoch.
  WireMessage Empty = makeRequest("stream-deltas", "s0");
  Empty.Params["flush"] = "1";
  Resp = Core.handle(Empty);
  ASSERT_EQ(Resp.Verb, "ok") << Resp.param("message");
  EXPECT_EQ(Resp.param("appended"), "0");
  EXPECT_EQ(Resp.param("flushed-cells"), "0");
  EXPECT_EQ(Resp.param("epoch"), "1");
}
