//===--- tests/interp_test.cpp - Interpreter semantics tests --------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ptran;

namespace {

/// Parses, runs, and returns the PRINT output.
std::string runAndPrint(std::string_view Src,
                        uint64_t MaxSteps = 10'000'000) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  if (!P)
    return "";
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run(MaxSteps);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

/// Runs and returns the failure message (empty when the run succeeded).
std::string runExpectFault(std::string_view Src,
                           uint64_t MaxSteps = 1'000'000) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  if (!P)
    return "";
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run(MaxSteps);
  EXPECT_FALSE(R.Ok);
  return R.Error;
}

TEST(Interp, IntegerAndRealArithmetic) {
  EXPECT_EQ(runAndPrint(R"(
program main
  i = 7 / 2
  j = mod(7, 3)
  k = 2 ** 10
  x = 7.0 / 2.0
  print i, j, k, x
end
)"),
            "3 1 1024 3.5\n");
}

TEST(Interp, IntrinsicsEvaluate) {
  EXPECT_EQ(runAndPrint(R"(
program main
  print abs(-3), min(4, 2, 9), max(1.5, 2.5), int(3.9), sqrt(16.0)
end
)"),
            "3 2 2.5 3 4\n");
}

TEST(Interp, DoLoopSemantics) {
  // Standard, stepped, negative-step and zero-trip loops.
  EXPECT_EQ(runAndPrint(R"(
program main
  integer i, s
  s = 0
  do i = 1, 5
    s = s + i
  enddo
  print s, i
  s = 0
  do i = 1, 10, 3
    s = s + 1
  enddo
  print s
  s = 0
  do i = 5, 1, -1
    s = s + i
  enddo
  print s
  s = 0
  do i = 3, 1
    s = s + 1
  enddo
  print s
end
)"),
            // After `do i = 1, 5` the index has been advanced past the
            // bound (Fortran-77 semantics).
            "15 6\n4\n15\n0\n");
}

TEST(Interp, NestedSharedLabelDoLoops) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer i, j, s
  s = 0
  do 10 i = 1, 3
    do 10 j = 1, 4
      s = s + 1
10 continue
  print s
end
)"),
            "12\n");
}

TEST(Interp, GotoLoopAndBlockIf) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer w, odd, even
  w = 0
10 w = w + 1
  if (mod(w, 2) .eq. 0) then
    even = even + 1
  else
    odd = odd + 1
  endif
  if (w .lt. 7) goto 10
  print w, odd, even
end
)"),
            "7 4 3\n");
}

TEST(Interp, ElseIfChain) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer a, r
  do 10 a = -1, 1
    if (a .lt. 0) then
      r = 1
    else if (a .eq. 0) then
      r = 2
    else
      r = 3
    endif
    print r
10 continue
end
)"),
            "1\n2\n3\n");
}

TEST(Interp, ByReferenceScalarAndArrayArguments) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer a, b
  real v(4)
  a = 1
  b = 2
  call swap(a, b)
  print a, b
  v(3) = 5.0
  call scale(v, 2.0)
  print v(3)
  call swap(a, a + 0)
  print a
end
subroutine swap(x, y)
  integer x, y, t
  t = x
  x = y
  y = t
end
subroutine scale(arr, f)
  real arr(4), f
  integer i
  do i = 1, 4
    arr(i) = arr(i) * f
  enddo
end
)"),
            // `a + 0` is an expression: passed by value, its mutation is
            // lost, while `a` itself receives the old a + 0.
            "2 1\n10\n2\n");
}

TEST(Interp, TwoDimensionalArraysAreColumnMajorConsistent) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer m(3, 2), i, j, s
  do 10 i = 1, 3
    do 10 j = 1, 2
      m(i, j) = 10 * i + j
10 continue
  s = 0
  do 20 i = 1, 3
    do 20 j = 1, 2
      s = s + m(i, j)
20 continue
  print s, m(3, 2)
end
)"),
            "129 32\n");
}

TEST(Interp, ShortCircuitLogicalOperators) {
  // .AND. short-circuits: the out-of-bounds access never happens.
  EXPECT_EQ(runAndPrint(R"(
program main
  real a(3)
  integer i
  i = 7
  if (i .le. 3 .and. a(i) .gt. 0.0) then
    print 1
  else
    print 0
  endif
end
)"),
            "0\n");
}

TEST(Interp, RecursionWorksWithinDepthLimit) {
  EXPECT_EQ(runAndPrint(R"(
program main
  integer n, r
  n = 10
  r = 0
  call sumto(n, r)
  print r
end
subroutine sumto(n, r)
  integer n, r, m
  if (n .le. 0) return
  r = r + n
  m = n - 1
  call sumto(m, r)
end
)"),
            "55\n");
}

TEST(InterpFaults, ArrayIndexOutOfBounds) {
  EXPECT_NE(runExpectFault(R"(
program main
  real a(3)
  i = 4
  a(i) = 1.0
end
)")
                .find("out of bounds"),
            std::string::npos);
}

TEST(InterpFaults, IntegerDivisionByZero) {
  EXPECT_NE(runExpectFault(R"(
program main
  i = 0
  j = 5 / i
end
)")
                .find("division by zero"),
            std::string::npos);
}

TEST(InterpFaults, StepBudgetStopsRunawayLoops) {
  EXPECT_NE(runExpectFault(R"(
program main
10 continue
  goto 10
end
)",
                           1000)
                .find("budget"),
            std::string::npos);
}

TEST(InterpFaults, RunawayRecursionHitsDepthLimit) {
  EXPECT_NE(runExpectFault(R"(
program main
  call f()
end
subroutine f()
  call f()
end
)")
                .find("depth"),
            std::string::npos);
}

TEST(InterpFaults, SqrtOfNegative) {
  EXPECT_NE(runExpectFault(R"(
program main
  x = sqrt(-1.0)
end
)")
                .find("SQRT"),
            std::string::npos);
}

TEST(InterpFaults, ZeroStepDoLoop) {
  EXPECT_NE(runExpectFault(R"(
program main
  integer i, k
  k = 0
  do i = 1, 5, k
  enddo
end
)")
                .find("zero step"),
            std::string::npos);
}

TEST(Interp, SimulatedCyclesScaleWithCostModel) {
  const char *Src = R"(
program main
  integer i, s
  do i = 1, 100
    s = s + i
  enddo
  print s
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  RunResult Fast = Interpreter(*P, CostModel::optimizing()).run();
  RunResult Slow = Interpreter(*P, CostModel::nonOptimizing()).run();
  ASSERT_TRUE(Fast.Ok && Slow.Ok);
  EXPECT_EQ(Fast.StatementsExecuted, Slow.StatementsExecuted);
  // The non-optimizing model is substantially slower (Table 1's
  // optimization ON/OFF gap).
  EXPECT_GT(Slow.Cycles, 2.0 * Fast.Cycles);
}

} // namespace
