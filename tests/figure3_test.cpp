//===--- tests/figure3_test.cpp - Golden numbers of Figures 1-3 -----------===//
//
// End-to-end reproduction of the paper's running example: the Figure 1
// fragment profiled under the Figure 3 scenario must yield
// TIME(START) = 920 and STD_DEV(START) = 300, along with the per-node
// <FREQ, TOTAL_FREQ> tuples of Figure 3.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

class Figure3Test : public ::testing::Test {
protected:
  void SetUp() override {
    Fix = makeFigure1();
    ASSERT_TRUE(verifyProgram(*Fix.Prog, Diags)) << Diags.str();
    Est = Estimator::create(*Fix.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
    ASSERT_NE(Est, nullptr) << Diags.str();
    RunResult R = Est->profiledRun();
    ASSERT_TRUE(R.Ok) << R.Error;
  }

  /// The ECFG node for a MAIN statement.
  NodeId node(StmtId S) const {
    return Est->analysis().of(*Fix.Main).cfg().nodeForStmt(S);
  }

  DiagnosticEngine Diags;
  Figure1Program Fix;
  std::unique_ptr<Estimator> Est;
};

TEST_F(Figure3Test, ScenarioCountsMatchThePaper) {
  // "The IF statement with label 10 is executed 10 times, and the loop is
  // exited by taking the IF (N .LT. 0) branch."
  FrequencyTotals T = Est->totalsFor(*Fix.Main);
  ASSERT_TRUE(T.Ok);

  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  const Ecfg &E = FA.ecfg();
  NodeId A = node(Fix.A), B = node(Fix.B), C = node(Fix.C), D = node(Fix.D);
  NodeId Header = A;
  NodeId Ph = E.preheaderOf(Header);
  ASSERT_NE(Ph, InvalidNode);

  EXPECT_DOUBLE_EQ(T.condTotal({E.start(), CfgLabel::U}), 1.0);
  EXPECT_DOUBLE_EQ(T.condTotal({Ph, CfgLabel::U}), 10.0); // A executed 10x.
  EXPECT_DOUBLE_EQ(T.condTotal({A, CfgLabel::T}), 10.0);  // M >= 0 always.
  EXPECT_DOUBLE_EQ(T.condTotal({A, CfgLabel::F}), 0.0);
  EXPECT_DOUBLE_EQ(T.condTotal({B, CfgLabel::T}), 1.0);   // The final exit.
  EXPECT_DOUBLE_EQ(T.condTotal({B, CfgLabel::F}), 9.0);   // 9 calls to FOO.
  EXPECT_DOUBLE_EQ(T.condTotal({C, CfgLabel::T}), 0.0);
  EXPECT_DOUBLE_EQ(T.condTotal({C, CfgLabel::F}), 0.0);
  EXPECT_DOUBLE_EQ(T.nodeTotal(D), 9.0);
}

TEST_F(Figure3Test, RelativeFrequenciesMatchFigure3) {
  FrequencyTotals T = Est->totalsFor(*Fix.Main);
  ASSERT_TRUE(T.Ok);
  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  Frequencies Freqs = computeFrequencies(FA, T);

  const Ecfg &E = FA.ecfg();
  NodeId A = node(Fix.A), B = node(Fix.B), C = node(Fix.C), D = node(Fix.D);
  NodeId Ph = E.preheaderOf(A);

  EXPECT_DOUBLE_EQ(Freqs.Invocations, 1.0);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({E.start(), CfgLabel::U}), 1.0);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({Ph, CfgLabel::U}), 10.0); // Loop frequency.
  EXPECT_DOUBLE_EQ(Freqs.freqOf({A, CfgLabel::T}), 1.0);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({A, CfgLabel::F}), 0.0);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({B, CfgLabel::T}), 0.1);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({B, CfgLabel::F}), 0.9);
  // C never executes; the footnote-2 guard forces its frequencies to 0.
  EXPECT_DOUBLE_EQ(Freqs.freqOf({C, CfgLabel::T}), 0.0);
  EXPECT_DOUBLE_EQ(Freqs.freqOf({C, CfgLabel::F}), 0.0);
  // NODE_FREQ(D): 9 executions per invocation (0.9 per loop iteration,
  // 10 iterations).
  EXPECT_DOUBLE_EQ(Freqs.NodeFreq[D], 9.0);
}

TEST_F(Figure3Test, TimeAndVarianceMatchFigure3) {
  TimeAnalysis TA = Est->analyze(figure3CostOptions());

  // The paper's headline numbers.
  EXPECT_DOUBLE_EQ(TA.programTime(), 920.0);
  EXPECT_DOUBLE_EQ(TA.programStdDev(), 300.0);
  EXPECT_DOUBLE_EQ(TA.functionVariance(*Fix.Main), 90000.0);
  EXPECT_DOUBLE_EQ(TA.functionTime(*Fix.Foo), 100.0);
  EXPECT_DOUBLE_EQ(TA.functionVariance(*Fix.Foo), 0.0);

  // Per-node tuples.
  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  const Ecfg &E = FA.ecfg();
  NodeId A = node(Fix.A), B = node(Fix.B), C = node(Fix.C), D = node(Fix.D);
  NodeId Ph = E.preheaderOf(A);

  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, D).Time, 100.0); // CALL FOO.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, D).Var, 0.0);
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, B).Cost, 1.0);
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, B).Time, 91.0); // 1 + 0.9 * 100.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, B).Var, 900.0);
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, C).Time, 1.0);  // Never-taken branches.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, A).Time, 92.0); // 1 + 1.0 * 91.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, A).Var, 900.0);
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, Ph).Time, 920.0); // 10 * 92.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, Ph).Var, 90000.0);
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, Ph).StdDev, 300.0);
  // E[T^2] = VAR + TIME^2 at the preheader.
  EXPECT_DOUBLE_EQ(TA.of(*Fix.Main, Ph).TimeSq, 90000.0 + 920.0 * 920.0);
}

TEST_F(Figure3Test, FcdgHasFigure3Shape) {
  // Structural checks against Figure 3: B and C are control dependent on
  // A's T/F branches, D on (B, F) and (C, F), A on the preheader's U
  // label, and the final CONTINUE (node E) directly on START.
  const FunctionAnalysis &FA = Est->analysis().of(*Fix.Main);
  const ControlDependence &CD = FA.cd();
  const Ecfg &E = FA.ecfg();
  NodeId A = node(Fix.A), B = node(Fix.B), C = node(Fix.C), D = node(Fix.D);
  NodeId Cont = node(Fix.E);
  NodeId Ph = E.preheaderOf(A);

  auto Has = [&](NodeId U, CfgLabel L, NodeId V) {
    std::vector<NodeId> Kids = CD.childrenOf(U, L);
    return std::find(Kids.begin(), Kids.end(), V) != Kids.end();
  };
  EXPECT_TRUE(Has(E.start(), CfgLabel::U, Ph));
  EXPECT_TRUE(Has(E.start(), CfgLabel::U, Cont));
  EXPECT_TRUE(Has(Ph, CfgLabel::U, A));
  EXPECT_TRUE(Has(A, CfgLabel::T, B));
  EXPECT_TRUE(Has(A, CfgLabel::F, C));
  EXPECT_TRUE(Has(B, CfgLabel::F, D));
  EXPECT_TRUE(Has(C, CfgLabel::F, D));
  // The loop body must not be control dependent on START directly.
  EXPECT_FALSE(Has(E.start(), CfgLabel::U, A));
  EXPECT_FALSE(Has(E.start(), CfgLabel::U, D));
}

TEST_F(Figure3Test, SmartPlanUsesFewCounters) {
  // MAIN: entry + latch + (A,T) + (B,T) and at most one more; the rest
  // must come from derivations (optimizations 1+2).
  const FunctionPlan &Plan = Est->plan().of(*Fix.Main);
  EXPECT_LE(Plan.numCounters(), 5u);

  // Every condition must be recoverable from those counters.
  EXPECT_TRUE(planIsRecoverable(Est->analysis().of(*Fix.Main), Plan));
}

} // namespace
