# Runs ptran-estimate end to end twice — the classic pipeline and the
# incremental --session pipeline — on the same workload and diffs the
# reports byte for byte, then checks --version and the unknown-flag
# diagnostics. Invoked by CTest as:
#
#   cmake -DESTIMATOR=<path> -DWORK_DIR=<dir> -P EstimateSessionDiff.cmake

if(NOT ESTIMATOR OR NOT WORK_DIR)
  message(FATAL_ERROR "ESTIMATOR and WORK_DIR must be defined")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(FLAGS --workload=loops --runs=2 --loop-variance=profiled --jobs=2)

execute_process(
  COMMAND ${ESTIMATOR} ${FLAGS}
  OUTPUT_FILE ${WORK_DIR}/classic.txt
  RESULT_VARIABLE CLASSIC_RC)
if(NOT CLASSIC_RC EQUAL 0)
  message(FATAL_ERROR "classic run failed with exit code ${CLASSIC_RC}")
endif()

execute_process(
  COMMAND ${ESTIMATOR} ${FLAGS} --session
  OUTPUT_FILE ${WORK_DIR}/session.txt
  RESULT_VARIABLE SESSION_RC)
if(NOT SESSION_RC EQUAL 0)
  message(FATAL_ERROR "--session run failed with exit code ${SESSION_RC}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/classic.txt ${WORK_DIR}/session.txt
  RESULT_VARIABLE DIFF_RC)
if(NOT DIFF_RC EQUAL 0)
  message(FATAL_ERROR
    "classic and --session reports differ; inspect ${WORK_DIR}")
endif()

execute_process(
  COMMAND ${ESTIMATOR} --version
  OUTPUT_VARIABLE VERSION_OUT
  RESULT_VARIABLE VERSION_RC)
if(NOT VERSION_RC EQUAL 0 OR NOT VERSION_OUT MATCHES "ptran-estimate ")
  message(FATAL_ERROR "--version failed: rc=${VERSION_RC} out=${VERSION_OUT}")
endif()

execute_process(
  COMMAND ${ESTIMATOR} --no-such-flag
  ERROR_VARIABLE BADFLAG_ERR
  RESULT_VARIABLE BADFLAG_RC)
if(BADFLAG_RC EQUAL 0)
  message(FATAL_ERROR "unknown flag was silently accepted")
endif()
if(NOT BADFLAG_ERR MATCHES "unknown option '--no-such-flag'")
  message(FATAL_ERROR
    "unknown-flag diagnostic is not actionable: ${BADFLAG_ERR}")
endif()

message(STATUS "classic and --session reports are byte-identical")
