//===--- examples/quickstart.cpp - Five-minute tour of the library --------===//
//
// Parses a small mini-language program, profiles one run with the paper's
// optimized counter placement, and prints the recovered frequencies and
// the TIME / VAR / STD_DEV estimates for every statement.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace ptran;

static const char *Source = R"(
program main
  integer i, n, s
  n = 40
  s = 0
  do 10 i = 1, n
    if (mod(i, 4) .eq. 0) then
      s = s + i * i
    else
      s = s + i
    endif
10 continue
  print s
end
)";

int main() {
  DiagnosticEngine Diags;

  // 1. Front end: source -> MiniIR (finalized + verified).
  std::unique_ptr<Program> Prog = parseProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. Analysis pipeline + counter plan + instrumented interpreter.
  CostModel CM = CostModel::optimizing();
  std::unique_ptr<Estimator> Est = Estimator::create(*Prog, CM, EstimatorOptions(Diags));
  if (!Est) {
    std::fprintf(stderr, "analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }

  RunResult Run = Est->profiledRun();
  if (!Run.Ok) {
    std::fprintf(stderr, "execution failed: %s\n", Run.Error.c_str());
    return 1;
  }
  std::printf("program output: %s", Run.Output.c_str());
  std::printf("simulated cycles: %s\n", formatDouble(Run.Cycles).c_str());
  std::printf("profiling counters: %u (smart placement), %llu dynamic "
              "updates\n\n",
              Est->plan().totalCounters(),
              static_cast<unsigned long long>(
                  Est->runtime().dynamicIncrements() +
                  Est->runtime().dynamicAdds()));

  // 3. Estimates: frequencies, average times and variance per statement.
  TimeAnalysisOptions Opts;
  Opts.LoopVariance = LoopVarianceMode::Profiled;
  TimeAnalysis TA = Est->analyze(Opts);

  const Function *Main = Prog->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  FrequencyTotals Totals = Est->totalsFor(*Main);
  Frequencies Freqs = computeFrequencies(FA, Totals);

  TablePrinter Table({"statement", "NODE_FREQ", "COST", "TIME", "VAR",
                      "STD_DEV"});
  for (StmtId S = 0; S < Main->numStmts(); ++S) {
    NodeId N = FA.cfg().nodeForStmt(S);
    if (N == InvalidNode)
      continue;
    const NodeEstimates &E = TA.of(*Main, N);
    Table.addRow({printStmt(*Main, Main->stmt(S)),
                  formatDouble(Freqs.NodeFreq[N], 4),
                  formatDouble(E.Cost, 4), formatDouble(E.Time, 5),
                  formatDouble(E.Var, 5), formatDouble(E.StdDev, 4)});
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("TIME(START)    = %s cycles (whole program average)\n",
              formatDouble(TA.programTime(), 8).c_str());
  std::printf("STD_DEV(START) = %s cycles\n",
              formatDouble(TA.programStdDev(), 6).c_str());
  return 0;
}
