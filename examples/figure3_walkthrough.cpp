//===--- examples/figure3_walkthrough.cpp - The paper's running example ---===//
//
// Reconstructs Figures 1-3 of the paper end to end: the statement-level
// CFG of the Fortran fragment, the extended CFG with PREHEADER / POSTEXIT
// / START / STOP nodes and pseudo edges, and the forward control
// dependence graph annotated with <FREQ, TOTAL_FREQ> and
// [COST, TIME, E[T^2], VAR, STD_DEV] tuples — ending at the paper's
// TIME(START) = 920 and STD_DEV(START) = 300.
//
// Build & run:  ./build/examples/figure3_walkthrough [--dot]
//   --dot also prints Graphviz sources for all three graphs.
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace ptran;

namespace {

/// Builds the Figure 1 fragment (the loop's IF runs 10 times; the exit is
/// taken through IF (N .LT. 0), as in the paper's scenario).
std::unique_ptr<Program> makeFigure1(StmtId &A, StmtId &B, StmtId &C,
                                     StmtId &D, StmtId &E) {
  auto Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  {
    FunctionBuilder Fb(*Prog, "main", Diags);
    VarId M = Fb.intVar("m");
    VarId N = Fb.intVar("n");
    Fb.assign(M, Fb.lit(1));
    Fb.assign(N, Fb.lit(8));
    A = Fb.label(10).ifGoto(Fb.ge(Fb.var(M), Fb.lit(0)), 30);
    C = Fb.ifGoto(Fb.ge(Fb.var(N), Fb.lit(0)), 20);
    Fb.gotoLabel(40);
    B = Fb.label(30).ifGoto(Fb.lt(Fb.var(N), Fb.lit(0)), 20);
    D = Fb.label(40).callSub("foo", {Fb.var(M), Fb.var(N)});
    Fb.gotoLabel(10);
    E = Fb.label(20).cont();
    if (!Fb.finish())
      reportFatalError("figure 1 failed to build:\n" + Diags.str());
  }
  {
    FunctionBuilder Fb(*Prog, "foo", Diags);
    Fb.intParam("m");
    VarId N = Fb.intParam("n");
    Fb.assign(N, Fb.sub(Fb.var(N), Fb.lit(1)));
    if (!Fb.finish())
      reportFatalError("foo failed to build:\n" + Diags.str());
  }
  return Prog;
}

void printGraphEdges(const Cfg &C, const char *Title) {
  std::printf("--- %s ---\n", Title);
  const Digraph &G = C.graph();
  for (EdgeId EId = 0; EId < G.numEdgeSlots(); ++EId) {
    if (!G.isLive(EId))
      continue;
    const Digraph::Edge &Ed = G.edge(EId);
    std::printf("  %-34s --%s--> %s\n", C.nodeName(Ed.From).c_str(),
                cfgLabelName(static_cast<CfgLabel>(Ed.Label)).c_str(),
                C.nodeName(Ed.To).c_str());
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  bool Dot = Argc > 1 && std::strcmp(Argv[1], "--dot") == 0;

  StmtId A, B, C, D, E;
  std::unique_ptr<Program> Prog = makeFigure1(A, B, C, D, E);

  std::printf("=== Figure 1: the Fortran fragment ===\n%s\n",
              printFunction(*Prog->entry()).c_str());

  DiagnosticEngine Diags;
  std::unique_ptr<Estimator> Est =
      Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  if (!Est) {
    std::fprintf(stderr, "analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }
  RunResult Run = Est->profiledRun();
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.c_str());
    return 1;
  }

  const Function *Main = Prog->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);

  printGraphEdges(FA.cfg(), "Figure 1: statement-level CFG (GOTOs elided "
                            "into edges)");
  printGraphEdges(FA.ecfg().cfg(),
                  "Figure 2: extended CFG (PREHEADER/POSTEXIT/START/STOP, "
                  "Z = pseudo edge)");

  // Figure 3: the FCDG with the paper's annotation tuples.
  FrequencyTotals Totals = Est->totalsFor(*Main);
  Frequencies Freqs = computeFrequencies(FA, Totals);
  TimeAnalysisOptions Opts;
  // Figure 3's literal cost assignment: IF = 1, CALL body = 100, rest 0.
  Opts.LocalCostOverride =
      [](const Function &F, const Stmt *S) -> std::optional<double> {
    if (equalsLower(F.name(), "foo"))
      return S->kind() == StmtKind::Assign ? 100.0 : 0.0;
    return S->kind() == StmtKind::IfGoto ? 1.0 : 0.0;
  };
  TimeAnalysis TA = Est->analyze(Opts);

  std::printf("--- Figure 3: forward control dependence graph ---\n");
  std::printf("edge annotations: <FREQ, TOTAL_FREQ>; node annotations: "
              "[COST, TIME, E[T^2], VAR, STD_DEV]\n\n");
  const ControlDependence &CD = FA.cd();
  const Cfg &Ecfg = FA.ecfg().cfg();
  for (NodeId U : CD.topoOrder()) {
    const NodeEstimates &NE = TA.of(*Main, U);
    std::printf("%-34s [%s, %s, %s, %s, %s]\n", Ecfg.nodeName(U).c_str(),
                formatDouble(NE.Cost).c_str(), formatDouble(NE.Time).c_str(),
                formatDouble(NE.TimeSq).c_str(),
                formatDouble(NE.Var).c_str(),
                formatDouble(NE.StdDev).c_str());
    for (CfgLabel L : CD.labelsOf(U)) {
      ControlCondition Cond{U, L};
      std::printf("    --%s <%s, %s>-->", cfgLabelName(L).c_str(),
                  formatDouble(Freqs.freqOf(Cond), 4).c_str(),
                  formatDouble(Totals.condTotal(Cond)).c_str());
      for (NodeId V : CD.childrenOf(U, L))
        std::printf(" %s;", Ecfg.nodeName(V).c_str());
      std::printf("\n");
    }
  }

  std::printf("\nTIME(START)    = %s   (the paper reports 920)\n",
              formatDouble(TA.programTime()).c_str());
  std::printf("STD_DEV(START) = %s   (the paper reports 300)\n",
              formatDouble(TA.programStdDev()).c_str());

  if (Dot) {
    std::printf("\n=== Graphviz ===\n%s\n%s\n",
                FA.cfg().dot("CFG (Figure 1)").c_str(),
                FA.ecfg().cfg().dot("ECFG (Figure 2)").c_str());
  }
  return TA.programTime() == 920.0 && TA.programStdDev() == 300.0 ? 0 : 2;
}
