//===--- examples/profile_explorer.cpp - Counter placement explorer -------===//
//
// Shows Section 3 at work on a whole workload: for each optimization
// level (naive per-block / opt1 / opt1+2 / smart) it reports how many
// counters the plan places and how many dynamic updates one run costs,
// then recovers the frequencies from the smart plan, estimates per-
// procedure times, and saves the accumulated profile in a PTRAN-style
// program database file.
//
// Build & run:  ./build/examples/profile_explorer [path/to/program.f]
//   Without an argument it explores the built-in LOOPS workload
//   (the 24 Livermore Loops).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "pdb/ProgramDatabase.h"
#include "session/EstimationSession.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ptran;

int main(int Argc, char **Argv) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog;
  std::string Name;

  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Prog = parseProgram(Buffer.str(), Diags);
    Name = Argv[1];
  } else {
    Prog = parseWorkload(livermoreLoops());
    Name = "LOOPS (24 Livermore kernels)";
  }
  if (!Prog) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  if (!PA) {
    std::fprintf(stderr, "analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }
  CostModel CM = CostModel::optimizing();

  std::printf("exploring counter placement for: %s\n\n", Name.c_str());

  // One interpreter run with all four runtimes attached at once, so every
  // level observes the identical execution.
  constexpr ProfileMode Modes[] = {ProfileMode::Naive, ProfileMode::Opt1,
                                   ProfileMode::Opt12, ProfileMode::Smart};
  std::vector<ProgramPlan> Plans;
  std::vector<std::unique_ptr<ProfileRuntime>> Runtimes;
  Interpreter Interp(*Prog, CM);
  for (ProfileMode M : Modes) {
    Plans.push_back(ProgramPlan::build(*PA, M));
    Runtimes.push_back(
        std::make_unique<ProfileRuntime>(*PA, Plans.back(), CM));
    Interp.addObserver(Runtimes.back().get());
  }
  RunResult Run = Interp.run();
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.c_str());
    return 1;
  }

  TablePrinter Table({"placement", "counters", "dyn updates",
                      "overhead cycles", "% of run"});
  for (size_t I = 0; I < Plans.size(); ++I) {
    double Overhead = Runtimes[I]->overheadCycles();
    Table.addRow(
        {profileModeName(Modes[I]), std::to_string(Plans[I].totalCounters()),
         std::to_string(Runtimes[I]->dynamicIncrements() +
                        Runtimes[I]->dynamicAdds()),
         formatDouble(Overhead),
         formatDouble(100.0 * Overhead / Run.Cycles, 3) + "%"});
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("program cycles without profiling: %s\n\n",
              formatDouble(Run.Cycles).c_str());

  // Recover per-procedure invocation counts and store the profile.
  const ProgramPlan &Smart = Plans.back();
  const ProfileRuntime &SmartRt = *Runtimes.back();
  ProgramDatabase Db;
  TablePrinter Procs({"procedure", "calls", "conditions", "counters"});
  for (const auto &F : Prog->functions()) {
    FrequencyTotals T = SmartRt.recover(*F);
    if (!T.Ok) {
      std::fprintf(stderr, "recovery failed for %s\n", F->name().c_str());
      return 1;
    }
    Db.accumulateTotals(PA->of(*F), T);
    Procs.addRow(
        {F->name(),
         formatDouble(
             T.condTotal({PA->of(*F).ecfg().start(), CfgLabel::U})),
         std::to_string(PA->of(*F).cd().conditions().size()),
         std::to_string(Smart.of(*F).numCounters())});
  }
  Db.noteRunCompleted();
  std::printf("%s\n", Procs.str().c_str());

  // Per-procedure TIME/STD_DEV through an EstimationSession: one batch
  // query answers every procedure, and asking again is a pure cache hit.
  auto Session = EstimationSession::create(*Prog, CM, EstimatorOptions(Diags));
  if (!Session) {
    std::fprintf(stderr, "session creation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  RunResult SessionRun = Session->profiledRun();
  if (!SessionRun.Ok) {
    std::fprintf(stderr, "session run failed: %s\n", SessionRun.Error.c_str());
    return 1;
  }
  std::vector<EstimateRequest> Requests;
  for (const auto &F : Prog->functions())
    Requests.emplace_back(F->name());
  std::vector<EstimateResult> Estimates = Session->estimate(Requests);
  TablePrinter Times({"procedure", "TIME", "STD_DEV"});
  for (const EstimateResult &R : Estimates) {
    if (!R.Ok) {
      std::fprintf(stderr, "estimate failed: %s\n", R.Error.c_str());
      return 1;
    }
    Times.addRow({R.F->name(), formatDouble(R.Time), formatDouble(R.StdDev)});
  }
  std::printf("%s\n", Times.str().c_str());
  Session->estimate(Requests); // Unchanged inputs: served from cache.
  std::printf("session evaluations: %llu total, %llu on the repeat query "
              "(%llu cache hits)\n\n",
              (unsigned long long)Session->totalEvaluations(),
              (unsigned long long)Session->lastEvaluations(),
              (unsigned long long)Session->cacheHits());

  const char *DbPath = "profile_explorer.pdb";
  if (Db.saveToFile(DbPath, Diags))
    std::printf("profile accumulated into %s (PTRAN-style program "
                "database; rerun to merge more runs)\n",
                DbPath);
  return 0;
}
