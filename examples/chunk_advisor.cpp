//===--- examples/chunk_advisor.cpp - Variance-guided loop chunking -------===//
//
// The paper's motivating application (Sections 1 and 5): use the
// estimated execution-time variance of a parallel loop's body to choose
// the Kruskal-Weiss chunk size. Two loops with the same average body time
// but very different variance get very different advice, and a
// self-scheduling simulation confirms the choice.
//
// Build & run:  ./build/examples/chunk_advisor
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "ir/Builder.h"
#include "sched/ChunkScheduling.h"
#include "support/FatalError.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>

using namespace ptran;

namespace {

/// main with two 512-iteration loops of equal mean body cost:
///   - "flat":  every iteration does the same work;
///   - "spiky": 1 iteration in 16 does 16x the work.
struct Demo {
  std::unique_ptr<Program> Prog;
  StmtId FlatLoop = 0;
  StmtId SpikyLoop = 0;
};

Demo buildDemo() {
  Demo Out;
  Out.Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  FunctionBuilder B(*Out.Prog, "main", Diags);
  VarId A = B.intVar("acc");
  VarId I = B.intVar("i"), J = B.intVar("j");

  // Flat loop: 16 units of work each iteration.
  Out.FlatLoop = B.doLoop(I, B.lit(1), B.lit(512));
  for (int W = 0; W < 16; ++W)
    B.assign(A, B.add(B.var(A), B.lit(W)));
  B.endDo();

  // Spiky loop: 1 unit normally, 241 units on every 16th iteration
  // (mean = 16, like the flat loop, but hugely skewed).
  Out.SpikyLoop = B.doLoop(J, B.lit(1), B.lit(512));
  B.assign(A, B.add(B.var(A), B.lit(1)));
  B.ifGoto(B.ne(B.intrinsic(Intrinsic::Mod, {B.var(J), B.lit(16)}),
                B.lit(0)),
           10);
  for (int W = 0; W < 240; ++W)
    B.assign(A, B.add(B.var(A), B.lit(W)));
  B.label(10).cont();
  B.endDo();
  B.print({B.var(A)});
  if (!B.finish())
    reportFatalError("demo failed to build:\n" + Diags.str());
  return Out;
}

} // namespace

int main() {
  Demo D = buildDemo();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*D.Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  if (!Est) {
    std::fprintf(stderr, "analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }
  RunResult Run = Est->profiledRun();
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.c_str());
    return 1;
  }
  TimeAnalysis TA = Est->analyze();

  const Function *Main = D.Prog->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  Frequencies Freqs = computeFrequencies(FA, Est->totalsFor(*Main));

  const unsigned P = 16;
  const double Overhead = 25.0;

  struct LoopCase {
    const char *Name;
    StmtId Header;
  } Cases[] = {{"flat", D.FlatLoop}, {"spiky", D.SpikyLoop}};

  TablePrinter Advice({"loop", "E[body]", "VAR[body]", "STD_DEV",
                       "KW chunk (P=16)"});
  LoopScheduleAdvice Advised[2];
  for (int I = 0; I < 2; ++I) {
    NodeId H = FA.cfg().nodeForStmt(Cases[I].Header);
    Advised[I] = adviseChunkSize(TA, FA, Freqs, H, P, Overhead);
    Advice.addRow({Cases[I].Name, formatDouble(Advised[I].BodyMean, 5),
                   formatDouble(Advised[I].BodyVar, 5),
                   formatDouble(std::sqrt(Advised[I].BodyVar), 4),
                   std::to_string(Advised[I].Chunk)});
  }
  std::printf("variance-guided chunk advice (overhead %s cycles per "
              "dispatch):\n%s\n",
              formatDouble(Overhead).c_str(), Advice.str().c_str());

  // Validate by simulation: iteration-time generators mirroring the two
  // loop bodies.
  Rng SpikeRng(7);
  auto FlatDraw = [&]() { return Advised[0].BodyMean; };
  auto SpikyDraw = [&]() {
    // A random 1-in-16 spike of 241 units over a base of 1 unit, scaled
    // so the mean matches the analysed body mean
    // ((15*1 + 241)/16 = 16 units). Randomness is what makes large
    // chunks risky: one unlucky chunk can collect several spikes.
    double Unit = Advised[1].BodyMean / 16.0;
    return SpikeRng.bernoulli(1.0 / 16.0) ? 241.0 * Unit : Unit;
  };

  TablePrinter Sim({"loop", "chunk", "avg makespan", "efficiency"});
  for (int I = 0; I < 2; ++I) {
    auto Draw = I == 0 ? std::function<double()>(FlatDraw)
                       : std::function<double()>(SpikyDraw);
    std::vector<uint64_t> Ks = {1, 8, 512 / P};
    if (std::find(Ks.begin(), Ks.end(), Advised[I].Chunk) == Ks.end())
      Ks.push_back(Advised[I].Chunk);
    std::sort(Ks.begin(), Ks.end());
    for (uint64_t K : Ks) {
      // Average 20 trials to tame sampling noise.
      double Makespan = 0.0, Work = 0.0;
      const int Trials = 20;
      for (int T = 0; T < Trials; ++T) {
        ChunkSimResult S = simulateChunkedLoop(512, P, K, Overhead, Draw);
        Makespan += S.Makespan;
        Work += S.TotalWork;
      }
      Makespan /= Trials;
      Work /= Trials;
      std::string Label = std::to_string(K);
      if (K == Advised[I].Chunk)
        Label += " (KW)";
      Sim.addRow({Cases[I].Name, Label, formatDouble(Makespan, 6),
                  formatDouble(100.0 * Work / (P * Makespan), 3) + "%"});
    }
    if (I == 0)
      Sim.addSeparator();
  }
  std::printf("self-scheduling simulation (512 iterations, %u "
              "processors):\n%s\n",
              P, Sim.str().c_str());

  std::printf("zero variance -> chunk N/P (fewest dispatches); large "
              "variance -> smaller chunks rebalance stragglers, exactly "
              "the trade-off Section 5 motivates.\n");
  return 0;
}
