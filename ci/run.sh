#!/usr/bin/env bash
#===--- ci/run.sh - Tier-1 verify plus sanitizer presets ------------------===#
#
# Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
#
# The complete CI gate, runnable locally with no arguments:
#
#   ci/run.sh            # tier-1 + TSan + UBSan (what CI runs)
#   ci/run.sh tier1      # just the plain build + ctest
#   ci/run.sh tsan       # just the -DPTRAN_SANITIZE=thread preset
#   ci/run.sh ubsan      # just the -DPTRAN_SANITIZE=undefined preset
#
# Each preset builds into its own directory (build-ci-*), so a CI run
# never disturbs a developer's ./build tree, and the sanitizer trees run
# the dedicated *_tsan / *_ubsan ctest entries with halt-on-error runtime
# options on top of the full suite. Every preset also runs the serve_smoke,
# recover_smoke and failover_smoke end-to-end checks (ptran-serve +
# ptran-bench-client over a scratch socket; recover_smoke kill -9s a
# --state-dir daemon at every injected crash point and byte-compares
# recovered estimates; failover_smoke pairs a primary with a --standby-of
# follower, kills the primary and promotes the standby, then sweeps the
# repl.* crash points on both sides). The recovery smokes run under
# explicit availability budgets — boot recovery and standby promotion must
# land inside the PTRAN_RECOVERY_SLO_MS / PTRAN_PROMOTE_SLO_MS wall-clock
# SLOs exported below (pre-set either variable to tighten or loosen the
# gate). Under tsan the serve_test, stream_test and repl_test concurrency
# suites rerun with halt_on_error to certify the daemon core's locking,
# the streaming ingest epoch protocol, and the shipper/standby hook
# contract; under ubsan stream_test, durable_test and repl_test rerun to
# certify the cell-index arithmetic, LE record decoding, the
# every-byte-length journal-truncation scan, and the appendRaw frame
# validator on garbled replication input.
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Recovery-time SLO budgets for the crash/failover smokes: a recovered
# daemon must be serving inside RECOVERY_SLO_MS of exec, and a standby
# must finish promotion inside PROMOTE_SLO_MS of the signal. Generous
# enough for sanitizer builds on loaded CI machines, tight enough to catch
# an accidental O(journal^2) replay or a promotion that waits on a dead
# primary.
export PTRAN_RECOVERY_SLO_MS="${PTRAN_RECOVERY_SLO_MS:-60000}"
export PTRAN_PROMOTE_SLO_MS="${PTRAN_PROMOTE_SLO_MS:-30000}"

run_preset() {
  local name="$1" sanitize="$2"
  local dir="build-ci-${name}"
  echo "=== ${name}: configure (${dir}) ==="
  local extra=()
  [ -n "${sanitize}" ] && extra+=("-DPTRAN_SANITIZE=${sanitize}")
  cmake -B "${dir}" -S . "${extra[@]}"
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

what="${1:-all}"
case "${what}" in
tier1) run_preset tier1 "" ;;
tsan) run_preset tsan thread ;;
ubsan) run_preset ubsan undefined ;;
all)
  run_preset tier1 ""
  run_preset tsan thread
  run_preset ubsan undefined
  ;;
*)
  echo "usage: ci/run.sh [tier1|tsan|ubsan|all]" >&2
  exit 2
  ;;
esac

echo "=== ${what}: OK ==="
