//===--- tools/ptran-estimate.cpp - Command-line estimation driver --------===//
//
// The whole framework behind one command:
//
//   ptran-estimate FILE.f [options]
//   ptran-estimate --workload=loops|simple [options]
//
// Options:
//   --runs=N                profiled runs to accumulate (default 1;
//                           0 needs --profile-in: estimate from the file)
//   --mode=smart|opt1+2|opt1|naive   counter placement (default smart)
//   --cost=on|off           optimizing / non-optimizing cost model
//   --loop-variance=zero|profiled|geometric|uniform
//   --statements=PROC       per-statement FREQ/TIME/VAR table for PROC
//   --annotate=PROC         annotated source listing for PROC
//   --plan                  print the counter plans
//   --sampling=PERIOD       also run a sampling profiler (cycles/sample)
//   --chunk=P,OVERHEAD      Kruskal-Weiss advice for every DO loop
//   --freq=profile|static|hybrid   frequency source (default profile)
//   --jobs=N                analysis worker threads (default: hardware
//                           concurrency; 1 = serial; results are identical
//                           for every value)
//   --session               drive the run/estimate flow through an
//                           incremental EstimationSession (same output)
//   --check                 verify the Section 3 identities on the profile
//                           (findings make the exit code nonzero)
//   --profile-out=FILE      save the accumulated counters + loop moments
//                           as a durable, checksummed profile file
//   --profile-in=FILE       (with --session) validate and ingest a saved
//                           profile before estimating
//   --on-bad-profile=fail|quarantine   what to do with functions whose
//                           profile data fails validation (default
//                           quarantine: degrade them to static
//                           frequencies and keep going)
//   --deadline-ms=N         wall-clock deadline for the whole invocation;
//                           estimation passes poll it cooperatively
//   --on-deadline=fail|degrade   what a hit deadline does (default fail:
//                           structured timeout; degrade: unfinished
//                           procedures fall back to static frequencies)
//   --io-retries=N          retry transient profile-file IO failures up
//                           to N times with exponential backoff
//   --dot=cfg|ecfg|fcdg     Graphviz of the entry procedure's graph
//   --pdb=FILE              load/accumulate/save a program database
//   --trace=FILE            write a Chrome trace_event JSON of the run
//   --stats                 print timing-span / counter tables at exit
//   --version               print the version and exit
//   --help                  print this option summary and exit
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "obs/Observability.h"
#include "cost/Report.h"
#include "freq/StaticFrequencies.h"
#include "ir/Printer.h"
#include "profile/ConsistencyCheck.h"
#include "parser/Parser.h"
#include "pdb/ProgramDatabase.h"
#include "profile/SamplingProfile.h"
#include "sched/ChunkScheduling.h"
#include "session/EstimationSession.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#ifndef PTRAN_VERSION
#define PTRAN_VERSION "unknown"
#endif

using namespace ptran;

namespace {

struct Options {
  std::string InputFile;
  std::string WorkloadName;
  unsigned Runs = 1;
  ProfileMode Mode = ProfileMode::Smart;
  bool OptimizingCost = true;
  LoopVarianceMode LoopVariance = LoopVarianceMode::Profiled;
  std::string StatementsProc;
  std::string AnnotateProc;
  bool PrintPlan = false;
  double SamplingPeriod = 0.0;
  unsigned ChunkP = 0;
  double ChunkOverhead = 0.0;
  std::string Dot;
  std::string PdbFile;
  enum class FreqSource { Profile, Static, Hybrid } Freq = FreqSource::Profile;
  bool Check = false;
  bool Session = false;
  /// Durable profile to write after the runs (empty = none).
  std::string ProfileOut;
  /// Durable profile to validate and ingest before estimating.
  std::string ProfileIn;
  /// Policy for functions whose profile data fails validation.
  BadProfilePolicy OnBadProfile = BadProfilePolicy::Quarantine;
  /// Wall-clock deadline in milliseconds; unset = unbounded. 0 is valid
  /// (an immediately-expired token) and exercises the timeout path.
  std::optional<unsigned> DeadlineMs;
  /// What a hit deadline does to the estimation phase.
  DeadlinePolicy OnDeadline = DeadlinePolicy::Fail;
  /// Transient profile-file IO failures absorbed per open (0 = no retry).
  unsigned IoRetries = 0;
  /// Chrome trace output path; empty = no trace.
  std::string TraceFile;
  /// Print the observability stats tables after the run.
  bool Stats = false;
  /// 0 = hardware concurrency (the default); 1 reproduces the serial
  /// pipeline bit-for-bit.
  unsigned Jobs = 0;
};

const char *const UsageText =
    "usage: ptran-estimate FILE.f | --workload=loops|simple [options]\n"
    "options:\n"
    "  --runs=N                profiled runs to accumulate (default 1)\n"
    "  --mode=smart|opt1+2|opt1|naive   counter placement (default smart)\n"
    "  --cost=on|off           optimizing / non-optimizing cost model\n"
    "  --loop-variance=zero|profiled|geometric|uniform\n"
    "  --statements=PROC       per-statement FREQ/TIME/VAR table for PROC\n"
    "  --annotate=PROC         annotated source listing for PROC\n"
    "  --plan                  print the counter plans\n"
    "  --sampling=PERIOD       also run a sampling profiler\n"
    "  --chunk=P,OVERHEAD      Kruskal-Weiss advice for every DO loop\n"
    "  --freq=profile|static|hybrid   frequency source (default profile)\n"
    "  --jobs=N                worker threads (0 = hardware concurrency)\n"
    "  --session               drive the flow through an EstimationSession\n"
    "  --check                 verify the Section 3 identities (findings\n"
    "                          make the exit code nonzero)\n"
    "  --profile-out=FILE      save the accumulated profile (checksummed)\n"
    "  --profile-in=FILE       validate + ingest a saved profile (--session)\n"
    "  --on-bad-profile=fail|quarantine   bad-profile policy (default\n"
    "                          quarantine: degrade to static frequencies)\n"
    "  --deadline-ms=N         wall-clock deadline for the invocation\n"
    "  --on-deadline=fail|degrade   deadline policy (default fail)\n"
    "  --io-retries=N          retries for transient profile IO failures\n"
    "  --dot=cfg|ecfg|fcdg     Graphviz of the entry procedure's graph\n"
    "  --pdb=FILE              load/accumulate/save a program database\n"
    "  --trace=FILE            write a Chrome trace_event JSON of the run\n"
    "  --stats                 print timing-span / counter tables at exit\n"
    "  --version               print the version and exit\n"
    "  --help                  print this summary and exit\n";

/// Parses the command line. On failure, \p Error holds an actionable
/// message naming the offending flag and the accepted values.
bool parseArgs(int Argc, char **Argv, Options &Opts, std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const std::string &Prefix) -> std::string {
      return Arg.substr(Prefix.size());
    };
    auto Invalid = [&](const std::string &Flag, const std::string &Got,
                       const std::string &Expected) {
      Error = "invalid value '" + Got + "' for " + Flag + " (expected " +
              Expected + ")";
      return false;
    };
    if (Arg == "--version") {
      std::printf("ptran-estimate %s\n", PTRAN_VERSION);
      std::exit(0);
    } else if (Arg == "--help") {
      std::printf("%s", UsageText);
      std::exit(0);
    } else if (Arg.rfind("--workload=", 0) == 0) {
      Opts.WorkloadName = toLower(Value("--workload="));
    } else if (Arg.rfind("--runs=", 0) == 0) {
      // atoi would silently turn garbage ("ten", "3x") into 0 or a prefix;
      // parseUnsigned accepts digits only and rejects overflow.
      std::optional<unsigned> N = parseUnsigned(Value("--runs="));
      if (!N)
        return Invalid("--runs", Value("--runs="), "a non-negative number");
      Opts.Runs = *N;
    } else if (Arg.rfind("--mode=", 0) == 0) {
      std::string M = toLower(Value("--mode="));
      if (M == "smart")
        Opts.Mode = ProfileMode::Smart;
      else if (M == "opt1+2" || M == "opt12")
        Opts.Mode = ProfileMode::Opt12;
      else if (M == "opt1")
        Opts.Mode = ProfileMode::Opt1;
      else if (M == "naive")
        Opts.Mode = ProfileMode::Naive;
      else
        return Invalid("--mode", M, "smart|opt1+2|opt1|naive");
    } else if (Arg.rfind("--cost=", 0) == 0) {
      std::string C = toLower(Value("--cost="));
      if (C == "on")
        Opts.OptimizingCost = true;
      else if (C == "off")
        Opts.OptimizingCost = false;
      else
        return Invalid("--cost", C, "on|off");
    } else if (Arg.rfind("--loop-variance=", 0) == 0) {
      std::string V = toLower(Value("--loop-variance="));
      if (V == "zero")
        Opts.LoopVariance = LoopVarianceMode::Zero;
      else if (V == "profiled")
        Opts.LoopVariance = LoopVarianceMode::Profiled;
      else if (V == "geometric")
        Opts.LoopVariance = LoopVarianceMode::Geometric;
      else if (V == "uniform")
        Opts.LoopVariance = LoopVarianceMode::Uniform;
      else
        return Invalid("--loop-variance", V,
                       "zero|profiled|geometric|uniform");
    } else if (Arg.rfind("--statements=", 0) == 0) {
      Opts.StatementsProc = Value("--statements=");
    } else if (Arg.rfind("--annotate=", 0) == 0) {
      Opts.AnnotateProc = Value("--annotate=");
    } else if (Arg == "--plan") {
      Opts.PrintPlan = true;
    } else if (Arg.rfind("--sampling=", 0) == 0) {
      std::optional<double> Period = parseDouble(Value("--sampling="));
      if (!Period || *Period <= 0.0)
        return Invalid("--sampling", Value("--sampling="),
                       "a positive cycles-per-sample period");
      Opts.SamplingPeriod = *Period;
    } else if (Arg.rfind("--chunk=", 0) == 0) {
      std::vector<std::string> Parts = split(Value("--chunk="), ',');
      if (Parts.size() != 2)
        return Invalid("--chunk", Value("--chunk="), "P,OVERHEAD");
      std::optional<unsigned> P = parseUnsigned(Parts[0]);
      std::optional<double> Overhead = parseDouble(Parts[1]);
      if (!P || *P == 0)
        return Invalid("--chunk", Value("--chunk="),
                       "a positive processor count P");
      if (!Overhead || *Overhead < 0.0)
        return Invalid("--chunk", Value("--chunk="),
                       "a non-negative scheduling overhead");
      Opts.ChunkP = *P;
      Opts.ChunkOverhead = *Overhead;
    } else if (Arg.rfind("--dot=", 0) == 0) {
      Opts.Dot = toLower(Value("--dot="));
      if (Opts.Dot != "cfg" && Opts.Dot != "ecfg" && Opts.Dot != "fcdg")
        return Invalid("--dot", Opts.Dot, "cfg|ecfg|fcdg");
    } else if (Arg.rfind("--freq=", 0) == 0) {
      std::string V = toLower(Value("--freq="));
      if (V == "profile")
        Opts.Freq = Options::FreqSource::Profile;
      else if (V == "static")
        Opts.Freq = Options::FreqSource::Static;
      else if (V == "hybrid")
        Opts.Freq = Options::FreqSource::Hybrid;
      else
        return Invalid("--freq", V, "profile|static|hybrid");
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      // 0 is a valid value (hardware concurrency), so a silent 0 on
      // garbage would be ambiguous; require an explicit non-negative number.
      std::optional<unsigned> J = parseUnsigned(Value("--jobs="));
      if (!J)
        return Invalid("--jobs", Value("--jobs="), "a non-negative number");
      Opts.Jobs = *J;
    } else if (Arg == "--session") {
      Opts.Session = true;
    } else if (Arg == "--check") {
      Opts.Check = true;
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      Opts.ProfileOut = Value("--profile-out=");
      if (Opts.ProfileOut.empty())
        return Invalid("--profile-out", "", "an output file path");
    } else if (Arg.rfind("--profile-in=", 0) == 0) {
      Opts.ProfileIn = Value("--profile-in=");
      if (Opts.ProfileIn.empty())
        return Invalid("--profile-in", "", "a profile file path");
    } else if (Arg.rfind("--on-bad-profile=", 0) == 0) {
      std::string V = toLower(Value("--on-bad-profile="));
      if (V == "fail")
        Opts.OnBadProfile = BadProfilePolicy::Fail;
      else if (V == "quarantine")
        Opts.OnBadProfile = BadProfilePolicy::Quarantine;
      else
        return Invalid("--on-bad-profile", V, "fail|quarantine");
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      // 0 is meaningful (an already-expired token), so garbage must not
      // silently parse to it.
      std::optional<unsigned> Ms = parseUnsigned(Value("--deadline-ms="));
      if (!Ms)
        return Invalid("--deadline-ms", Value("--deadline-ms="),
                       "a non-negative number of milliseconds");
      Opts.DeadlineMs = *Ms;
    } else if (Arg.rfind("--on-deadline=", 0) == 0) {
      std::string V = toLower(Value("--on-deadline="));
      if (V == "fail")
        Opts.OnDeadline = DeadlinePolicy::Fail;
      else if (V == "degrade")
        Opts.OnDeadline = DeadlinePolicy::Degrade;
      else
        return Invalid("--on-deadline", V, "fail|degrade");
    } else if (Arg.rfind("--io-retries=", 0) == 0) {
      std::optional<unsigned> N = parseUnsigned(Value("--io-retries="));
      if (!N)
        return Invalid("--io-retries", Value("--io-retries="),
                       "a non-negative retry count");
      Opts.IoRetries = *N;
    } else if (Arg.rfind("--pdb=", 0) == 0) {
      Opts.PdbFile = Value("--pdb=");
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TraceFile = Value("--trace=");
      if (Opts.TraceFile.empty())
        return Invalid("--trace", "", "an output file path");
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg.rfind("--", 0) == 0) {
      Error = "unknown option '" + Arg + "'";
      return false;
    } else if (Opts.InputFile.empty()) {
      Opts.InputFile = Arg;
    } else {
      Error = "unexpected extra argument '" + Arg + "' (input file is " +
              Opts.InputFile + ")";
      return false;
    }
  }
  if (Opts.InputFile.empty() && Opts.WorkloadName.empty()) {
    Error = "no input: pass FILE.f or --workload=loops|simple";
    return false;
  }
  if (Opts.Session) {
    // The session path owns the run/recover/estimate flow end to end;
    // flags that swap in a different frequency source or attach extra
    // observers only exist on the classic path.
    if (!Opts.PdbFile.empty()) {
      Error = "--session does not combine with --pdb (the session is its "
              "own accumulator); drop one of the two";
      return false;
    }
    if (Opts.SamplingPeriod > 0.0) {
      Error = "--session does not combine with --sampling; drop one of "
              "the two";
      return false;
    }
    if (Opts.Freq != Options::FreqSource::Profile) {
      Error = "--session only supports --freq=profile";
      return false;
    }
  }
  if (!Opts.ProfileIn.empty() && !Opts.Session) {
    Error = "--profile-in needs --session (ingestion goes through the "
            "session's validator); add --session";
    return false;
  }
  if (Opts.Runs == 0 && Opts.ProfileIn.empty()) {
    Error = "--runs=0 only makes sense with --profile-in (no runs and no "
            "profile leaves nothing to estimate from)";
    return false;
  }
  return true;
}

std::unique_ptr<Program> loadProgram(const Options &Opts,
                                     DiagnosticEngine &Diags) {
  if (!Opts.WorkloadName.empty()) {
    if (Opts.WorkloadName == "loops")
      return parseWorkload(livermoreLoops());
    if (Opts.WorkloadName == "simple")
      return parseWorkload(simpleKernel());
    std::fprintf(stderr, "unknown workload '%s' (use loops or simple)\n",
                 Opts.WorkloadName.c_str());
    return nullptr;
  }
  std::ifstream In(Opts.InputFile);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Opts.InputFile.c_str());
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::unique_ptr<Program> P = parseProgram(Buffer.str(), Diags);
  if (!P)
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
  return P;
}

void printStatementTable(const Estimator &Est, const Function &F,
                         const TimeAnalysis &TA) {
  const FunctionAnalysis &FA = Est.analysis().of(F);
  FrequencyTotals Totals = Est.totalsFor(F);
  if (!Totals.Ok) {
    std::fprintf(stderr,
                 "no recoverable frequencies for %s (naive mode?)\n",
                 F.name().c_str());
    return;
  }
  Frequencies Freqs = computeFrequencies(FA, Totals);
  TablePrinter T({"statement", "NODE_FREQ", "COST", "TIME", "VAR",
                  "STD_DEV"});
  for (StmtId S = 0; S < F.numStmts(); ++S) {
    NodeId N = FA.cfg().nodeForStmt(S);
    if (N == InvalidNode)
      continue;
    const NodeEstimates &E = TA.of(F, N);
    T.addRow({printStmt(F, F.stmt(S)), formatDouble(Freqs.NodeFreq[N], 5),
              formatDouble(E.Cost, 5), formatDouble(E.Time, 6),
              formatDouble(E.Var, 6), formatDouble(E.StdDev, 5)});
  }
  std::printf("per-statement estimates for %s:\n%s\n", F.name().c_str(),
              T.str().c_str());
}

void printChunkAdvice(const Estimator &Est, const TimeAnalysis &TA,
                      unsigned P, double Overhead) {
  TablePrinter T({"procedure", "DO loop", "trips", "E[body]", "VAR[body]",
                  "KW chunk"});
  for (const auto &F : Est.analysis().program().functions()) {
    const FunctionAnalysis &FA = Est.analysis().of(*F);
    FrequencyTotals Totals = Est.totalsFor(*F);
    if (!Totals.Ok)
      continue;
    Frequencies Freqs = computeFrequencies(FA, Totals);
    for (NodeId H : FA.intervals().headers()) {
      StmtId S = FA.cfg().origin(H);
      if (S == InvalidStmt || F->stmt(S)->kind() != StmtKind::DoStart)
        continue;
      LoopScheduleAdvice A = adviseChunkSize(TA, FA, Freqs, H, P, Overhead);
      T.addRow({F->name(), printStmt(*F, F->stmt(S)),
                formatDouble(A.TripCount, 5), formatDouble(A.BodyMean, 5),
                formatDouble(A.BodyVar, 5), std::to_string(A.Chunk)});
    }
  }
  std::printf("Kruskal-Weiss chunk advice (P=%u, overhead=%s):\n%s\n", P,
              formatDouble(Overhead).c_str(), T.str().c_str());
}

/// Prints the run header shared by the classic and session paths.
void printRunSummary(const Options &Opts, const Estimator &Est,
                     double Cycles) {
  std::printf("%u run(s), %s simulated cycles total; profiling overhead "
              "%s cycles (%u counters, %llu updates)\n\n",
              Opts.Runs, formatDouble(Cycles).c_str(),
              formatDouble(Est.runtime().overheadCycles()).c_str(),
              Est.plan().totalCounters(),
              static_cast<unsigned long long>(
                  Est.runtime().dynamicIncrements() +
                  Est.runtime().dynamicAdds()));
}

/// Prints the estimate block shared by the classic and session paths.
/// Returns 0, or 1 when a named procedure does not exist.
int printEstimates(const Options &Opts, const Program &Prog,
                   const Estimator &Est,
                   const std::map<const Function *, Frequencies> &Freqs,
                   const TimeAnalysis &TA) {
  std::printf("flat profile (estimated):\n%s\n",
              formatProcedureReport(
                  buildProcedureReport(Est.analysis(), Freqs, TA))
                  .c_str());
  std::printf("TIME(START)    = %s cycles\n",
              formatDouble(TA.programTime(), 8).c_str());
  std::printf("STD_DEV(START) = %s cycles\n",
              formatDouble(TA.programStdDev(), 6).c_str());

  if (!Opts.StatementsProc.empty()) {
    const Function *F = Prog.findFunction(Opts.StatementsProc);
    if (!F) {
      std::fprintf(stderr, "no procedure named %s\n",
                   Opts.StatementsProc.c_str());
      return 1;
    }
    std::printf("\n");
    printStatementTable(Est, *F, TA);
  }

  if (!Opts.AnnotateProc.empty()) {
    const Function *F = Prog.findFunction(Opts.AnnotateProc);
    if (!F) {
      std::fprintf(stderr, "no procedure named %s\n",
                   Opts.AnnotateProc.c_str());
      return 1;
    }
    std::printf("\n%s\n",
                annotatedListing(Est.analysis().of(*F), Est.totalsFor(*F),
                                 TA)
                    .c_str());
  }

  if (Opts.ChunkP > 0) {
    std::printf("\n");
    printChunkAdvice(Est, TA, Opts.ChunkP, Opts.ChunkOverhead);
  }
  return 0;
}

/// \returns the number of findings, so callers can fail the invocation —
/// a consistency violation that exits 0 is invisible to scripts.
unsigned printFrequencyCheck(const Program &Prog, const Estimator &Est) {
  unsigned Issues = 0;
  for (const auto &F : Prog.functions()) {
    std::vector<std::string> Findings = checkFrequencyConsistency(
        Est.analysis().of(*F), Est.totalsFor(*F));
    for (const std::string &Finding : Findings) {
      std::printf("consistency: %s\n", Finding.c_str());
      ++Issues;
    }
  }
  std::printf("consistency check: %u issue(s) across the Section 3 "
              "identities\n\n",
              Issues);
  return Issues;
}

/// Prints an ingest report's findings and quarantine list.
void printIngestReport(const std::string &Path,
                       const ProfileIngestReport &Report) {
  for (const std::string &Finding : Report.Findings)
    std::printf("profile %s: %s\n", Path.c_str(), Finding.c_str());
  if (Report.Ok)
    std::printf("profile %s: ingested %u section(s), quarantined %zu\n\n",
                Path.c_str(), Report.Accepted, Report.Quarantined.size());
}

/// Prints which functions are estimated from static frequencies and why.
void printQuarantineSummary(const EstimationSession &Session) {
  if (Session.quarantined().empty())
    return;
  std::printf("\nquarantined procedures (estimates use static "
              "frequencies):\n");
  for (const auto &[F, Reason] : Session.quarantined())
    std::printf("  %-12s %s\n", F->name().c_str(), Reason.c_str());
}

/// Prints which functions the deadline degraded to static frequencies.
void printDegradeSummary(
    const std::map<const Function *, std::string> &Degraded) {
  if (Degraded.empty())
    return;
  std::printf("\ndegraded procedures (deadline hit; estimates use static "
              "frequencies):\n");
  for (const auto &[F, Reason] : Degraded)
    std::printf("  %-12s %s\n", F->name().c_str(), Reason.c_str());
}

void printPlansAndDot(const Options &Opts, const Program &Prog,
                      const Estimator &Est) {
  if (Opts.PrintPlan)
    for (const auto &F : Prog.functions())
      std::printf("%s\n",
                  Est.plan().of(*F).str(Est.analysis().of(*F)).c_str());

  if (!Opts.Dot.empty()) {
    const FunctionAnalysis &FA = Est.analysis().of(*Prog.entry());
    if (Opts.Dot == "fcdg") {
      std::printf("%s\n",
                  FA.cd()
                      .dot(FA.ecfg().cfg(), Prog.entryName() + " fcdg")
                      .c_str());
    } else {
      const Cfg &G = Opts.Dot == "cfg" ? FA.cfg() : FA.ecfg().cfg();
      std::printf("%s\n",
                  G.dot(Prog.entryName() + " " + Opts.Dot).c_str());
    }
  }
}

/// The incremental path: one EstimationSession owns the runs, the cached
/// summaries and the analysis; the tool is a thin client of estimate().
int runSessionPath(const Options &Opts, const Program &Prog,
                   const CostModel &CM, ObsRegistry *Obs) {
  DiagnosticEngine TADiags;
  RetryPolicy IoRetry = RetryPolicy().retries(Opts.IoRetries);
  // The token outlives the session (same scope) and is armed before any
  // work, so the deadline covers the whole invocation.
  CancelToken Token;
  EstimatorOptions EOpts = EstimatorOptions(TADiags)
                               .mode(Opts.Mode)
                               .jobs(Opts.Jobs)
                               .loopVariance(Opts.LoopVariance)
                               .onBadProfile(Opts.OnBadProfile)
                               .onDeadline(Opts.OnDeadline)
                               .ioRetry(IoRetry);
  if (Opts.DeadlineMs) {
    Token.setDeadlineIn(std::chrono::milliseconds(*Opts.DeadlineMs));
    EOpts.cancel(Token);
  }
  if (Obs)
    EOpts.observability(*Obs);
  auto Session = EstimationSession::create(Prog, CM, EOpts);
  if (!Session) {
    std::fprintf(stderr, "analysis failed:\n%s", TADiags.str().c_str());
    return 1;
  }
  const Estimator &Est = Session->estimator();
  printPlansAndDot(Opts, Prog, Est);

  double Cycles = 0.0;
  for (unsigned R = 0; R < Opts.Runs; ++R) {
    RunResult Run = Session->profiledRun();
    if (!Run.Ok) {
      std::fprintf(stderr, "run %u failed: %s\n", R + 1, Run.Error.c_str());
      return 1;
    }
    Cycles += Run.Cycles;
    if (R == 0 && !Run.Output.empty())
      std::printf("program output:\n%s", Run.Output.c_str());
  }
  printRunSummary(Opts, Est, Cycles);

  // Ingest a saved profile before any estimate: an unreadable file is a
  // hard error under either policy (there is nothing to degrade to — the
  // whole input is gone), per-section problems follow the policy.
  if (!Opts.ProfileIn.empty()) {
    DiagnosticEngine LoadDiags;
    std::optional<ProfileFile> PF =
        ProfileFile::loadFromFile(Opts.ProfileIn, &LoadDiags, IoRetry, Obs);
    if (!PF) {
      std::fprintf(stderr, "%s", LoadDiags.str().c_str());
      return 1;
    }
    if (!LoadDiags.diagnostics().empty())
      std::fprintf(stderr, "%s", LoadDiags.str().c_str());
    ProfileIngestReport Report = Session->ingestProfile(*PF);
    printIngestReport(Opts.ProfileIn, Report);
    if (!Report.Ok) {
      std::fprintf(stderr, "profile %s rejected: %s\n",
                   Opts.ProfileIn.c_str(), Report.Error.c_str());
      return 1;
    }
  }

  int Rc = 0;
  if (!Opts.ProfileOut.empty()) {
    DiagnosticEngine SaveDiags;
    if (!Session->saveProfile(Opts.ProfileOut, &SaveDiags)) {
      std::fprintf(stderr, "%s", SaveDiags.str().c_str());
      Rc = 1;
    } else {
      std::printf("profile saved to %s (%u run(s))\n\n",
                  Opts.ProfileOut.c_str(), Session->runsExecuted());
    }
  }

  if (Opts.Mode == ProfileMode::Naive) {
    std::printf("naive mode measures basic blocks only; rerun with "
                "--mode=smart for estimates\n");
    return Rc;
  }

  if (Opts.Check && printFrequencyCheck(Prog, Est) > 0)
    Rc = 1;

  EstimateResult Res = Session->estimateEntry();
  if (!TADiags.diagnostics().empty())
    std::fprintf(stderr, "%s", TADiags.str().c_str());
  if (!Res.Ok) {
    std::fprintf(stderr, "estimation failed: %s\n", Res.Error.c_str());
    return 1;
  }

  // The flat profile wants per-function frequencies; recompute them from
  // the same inputs the session estimated from (quarantined functions use
  // static frequencies, like the session does).
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog.functions())
    Freqs[F.get()] =
        Session->isQuarantined(*F) || Session->isDegraded(*F)
            ? computeStaticFrequencies(Est.analysis().of(*F)).Freqs
            : computeFrequencies(Est.analysis().of(*F), Est.totalsFor(*F));
  int EstimatesRc = printEstimates(Opts, Prog, Est, Freqs, *Res.Analysis);
  printQuarantineSummary(*Session);
  printDegradeSummary(Session->degraded());
  return EstimatesRc != 0 ? EstimatesRc : Rc;
}

/// The classic path: the tool drives the interpreter and the analysis
/// itself (sampling, pdb round trips and alternate frequency sources live
/// here only).
int runClassicPath(const Options &Opts, const Program &Prog,
                   const CostModel &CM, DiagnosticEngine &Diags,
                   ObsRegistry *Obs) {
  RetryPolicy IoRetry = RetryPolicy().retries(Opts.IoRetries);
  CancelToken Token;
  EstimatorOptions EOpts =
      EstimatorOptions(Diags).mode(Opts.Mode).jobs(Opts.Jobs).loopVariance(
          Opts.LoopVariance);
  if (Opts.DeadlineMs) {
    Token.setDeadlineIn(std::chrono::milliseconds(*Opts.DeadlineMs));
    EOpts.cancel(Token);
  }
  if (Obs)
    EOpts.observability(*Obs);
  std::unique_ptr<Estimator> Est = Estimator::create(Prog, CM, EOpts);
  if (!Est) {
    std::fprintf(stderr, "analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }

  printPlansAndDot(Opts, Prog, *Est);

  // Optional sampling profiler alongside the counter runtime.
  std::unique_ptr<SamplingProfile> Sampler;
  if (Opts.SamplingPeriod > 0.0)
    Sampler = std::make_unique<SamplingProfile>(CM, Opts.SamplingPeriod);

  double Cycles = 0.0;
  for (unsigned R = 0; R < Opts.Runs; ++R) {
    TimingSpan RunSpan(Obs, "profiled-run");
    Interpreter Interp(Prog, CM);
    Interp.addObserver(&Est->runtimeMutable());
    // Feed the loop-frequency moments too: --loop-variance=profiled (the
    // default) is meaningless without them.
    Interp.addObserver(&Est->loopStatsMutable());
    if (Sampler)
      Interp.addObserver(Sampler.get());
    RunResult Run = Interp.run();
    if (!Run.Ok) {
      std::fprintf(stderr, "run %u failed: %s\n", R + 1, Run.Error.c_str());
      return 1;
    }
    Cycles += Run.Cycles;
    if (R == 0 && !Run.Output.empty())
      std::printf("program output:\n%s", Run.Output.c_str());
  }
  printRunSummary(Opts, *Est, Cycles);

  if (Sampler)
    std::printf("%s\n", Sampler->report().c_str());

  int Rc = 0;
  if (!Opts.ProfileOut.empty()) {
    DiagnosticEngine SaveDiags;
    ProfileFile PF = ProfileFile::capture(Est->analysis(), Est->plan(),
                                          Est->runtime(), &Est->loopStats(),
                                          Opts.Runs);
    if (!PF.saveToFile(Opts.ProfileOut, &SaveDiags, IoRetry, Obs)) {
      std::fprintf(stderr, "%s", SaveDiags.str().c_str());
      Rc = 1;
    } else {
      std::printf("profile saved to %s (%u run(s))\n\n",
                  Opts.ProfileOut.c_str(), Opts.Runs);
    }
  }

  if (Opts.Mode == ProfileMode::Naive) {
    std::printf("naive mode measures basic blocks only; rerun with "
                "--mode=smart for estimates\n");
    return Rc;
  }

  if (Opts.Check && printFrequencyCheck(Prog, *Est) > 0)
    Rc = 1;

  // Program-database round trip, if requested.
  std::map<const Function *, Frequencies> Freqs;
  if (!Opts.PdbFile.empty()) {
    ProgramDatabase Db;
    struct stat St;
    if (::stat(Opts.PdbFile.c_str(), &St) == 0) {
      auto Loaded = ProgramDatabase::loadFromFile(Opts.PdbFile, Diags);
      if (Loaded)
        Db = std::move(*Loaded);
      else
        std::fprintf(stderr, "ignoring unreadable program database:\n%s",
                     Diags.str().c_str());
    }
    for (const auto &F : Prog.functions())
      Db.accumulateTotals(Est->analysis().of(*F), Est->totalsFor(*F));
    Db.noteRunCompleted();
    if (!Db.saveToFile(Opts.PdbFile, Diags))
      std::fprintf(stderr, "%s", Diags.str().c_str());
    else
      std::printf("program database %s now covers %u accumulation(s)\n\n",
                  Opts.PdbFile.c_str(), Db.runsRecorded());
    for (const auto &F : Prog.functions()) {
      FrequencyTotals T = Db.totalsFor(Est->analysis().of(*F));
      Freqs[F.get()] = computeFrequencies(
          Est->analysis().of(*F),
          T.Ok ? T : Est->totalsFor(*F));
    }
  } else {
    for (const auto &F : Prog.functions()) {
      const FunctionAnalysis &FA = Est->analysis().of(*F);
      switch (Opts.Freq) {
      case Options::FreqSource::Profile:
        Freqs[F.get()] = computeFrequencies(FA, Est->totalsFor(*F));
        break;
      case Options::FreqSource::Static:
        Freqs[F.get()] = computeStaticFrequencies(FA).Freqs;
        break;
      case Options::FreqSource::Hybrid: {
        FrequencyTotals T = Est->totalsFor(*F);
        StaticFrequencies S = computeStaticFrequencies(FA);
        Freqs[F.get()] = hybridFrequencies(FA, S, &T);
        break;
      }
      }
    }
  }

  TimeAnalysisOptions TAOpts;
  TAOpts.LoopVariance = Opts.LoopVariance;
  TAOpts.Stats = &Est->loopStats();
  TAOpts.Exec.Jobs = Opts.Jobs;
  TAOpts.Obs.Registry = Obs;
  DiagnosticEngine TADiags;
  TAOpts.Diags = &TADiags;
  if (Opts.DeadlineMs)
    TAOpts.Cancel = &Token;
  TimeAnalysis TA = TimeAnalysis::run(Est->analysis(), Freqs, CM, TAOpts);
  std::map<const Function *, std::string> Degraded;
  if (TA.cutShort()) {
    if (Opts.OnDeadline == DeadlinePolicy::Fail) {
      if (!TADiags.diagnostics().empty())
        std::fprintf(stderr, "%s", TADiags.str().c_str());
      std::fprintf(stderr, "estimation failed: %s\n",
                   cancelMessage(Token, "estimation").c_str());
      return 1;
    }
    // Degrade: unfinished procedures fall back to static frequencies and
    // an unbudgeted incremental rerun completes them; everything the
    // budgeted run finished is reused bit-identically.
    std::vector<const Function *> Unfinished = TA.unfinished();
    for (const Function *F : Unfinished) {
      Freqs[F] = computeStaticFrequencies(Est->analysis().of(*F)).Freqs;
      Degraded[F] = Token.describe();
    }
    TAOpts.Cancel = nullptr;
    TA = TimeAnalysis::rerun(Est->analysis(), Freqs, CM, TAOpts, TA,
                             Unfinished);
  }
  if (!TADiags.diagnostics().empty())
    std::fprintf(stderr, "%s", TADiags.str().c_str());

  int EstimatesRc = printEstimates(Opts, Prog, *Est, Freqs, TA);
  printDegradeSummary(Degraded);
  return EstimatesRc != 0 ? EstimatesRc : Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  std::string ParseError;
  if (!parseArgs(Argc, Argv, Opts, ParseError)) {
    std::fprintf(stderr, "ptran-estimate: %s\n%s", ParseError.c_str(),
                 UsageText);
    return 1;
  }

  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = loadProgram(Opts, Diags);
  if (!Prog)
    return 1;

  CostModel CM = Opts.OptimizingCost ? CostModel::optimizing()
                                     : CostModel::nonOptimizing();

  // One registry for the whole invocation when --trace/--stats asked for
  // it; null otherwise, which keeps every instrumented pass on its
  // zero-overhead path.
  std::unique_ptr<ObsRegistry> Obs;
  if (!Opts.TraceFile.empty() || Opts.Stats)
    Obs = std::make_unique<ObsRegistry>();

  int Rc = Opts.Session
               ? runSessionPath(Opts, *Prog, CM, Obs.get())
               : runClassicPath(Opts, *Prog, CM, Diags, Obs.get());

  // Emit observability output even when the run failed: a trace of a
  // failing run is exactly what one wants to look at.
  if (Obs) {
    if (Opts.Stats)
      std::printf("\n%s", Obs->statsTable().c_str());
    if (!Opts.TraceFile.empty()) {
      std::string Error;
      if (!Obs->writeChromeTrace(Opts.TraceFile, Error)) {
        std::fprintf(stderr, "ptran-estimate: %s\n", Error.c_str());
        if (Rc == 0)
          Rc = 1;
      }
    }
  }
  return Rc;
}
