//===--- tools/ptran-serve.cpp - Concurrent estimation daemon -------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived estimation daemon: clients connect over a Unix-domain
/// socket, load mini-language programs into named EstimationSessions, and
/// issue concurrent estimate / run / ingest-profile / capture-profile /
/// stats requests against them (see serve/Protocol.h for the wire format).
///
/// Each connection gets one reader thread that does nothing but frame IO;
/// request bodies execute on one shared ThreadPool. Admission control is a
/// simple in-flight cap: a request arriving while `--queue-limit` are
/// already executing or queued is shed immediately with an `overloaded`
/// error rather than queued behind work it would deadline out of anyway.
/// Per-request deadlines (`deadline-ms`) and step budgets arm a per-call
/// CancelToken inside the session; under the default
/// `--on-deadline=degrade`, a tripped deadline yields a tagged
/// static-frequency answer instead of an error.
///
//===----------------------------------------------------------------------===//

#include "obs/Observability.h"
#include "repl/Replication.h"
#include "repl/Standby.h"
#include "serve/Server.h"
#include "serve/Wire.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::serve;

namespace {

const char *UsageText = R"(usage: ptran-serve --socket=PATH [options]

Serves concurrent estimation requests over a Unix-domain socket. See
ptran-bench-client for a load generator speaking the same protocol.

options:
  --socket=PATH          socket path to listen on (required)
  --jobs=N               request worker threads (default 0 = all cores)
  --session-jobs=N       worker threads inside each session (default 1)
  --queue-limit=N        max in-flight requests before shedding (default 128)
  --memory-budget-mb=N   resident-session memory budget (default 256)
  --max-sessions=N       resident-session count cap (default 64)
  --on-deadline=POLICY   degrade|fail for expired request deadlines
                         (default degrade)
  --step-budget=N        default per-request step budget, 0 = unbounded
                         (default 0)
  --state-dir=DIR        crash-safe state: write-ahead journal + snapshots
                         in DIR; boot replays them (default: ephemeral)
  --flush-interval-ms=N  background flusher cadence: seal stale stream
                         epochs and fsync the journal (default 200)
  --flush-cells=N        pending stream appends that trigger an epoch
                         flush before the timer (default 8192)
  --flush-max-staleness-ms=N
                         seal a stream epoch once its oldest pending
                         append is this old, even before the flush
                         interval; 0 = timer-only (default 0)
  --snapshot-interval-ms=N
                         periodic checkpoint cadence, 0 = only on the
                         `checkpoint` verb and shutdown (default 5000)
  --fsync=POLICY         always|batch|never journal durability
                         (default batch)
  --read-timeout-ms=N    per-frame stall deadline on server connections:
                         a peer that stops mid-frame for this long is
                         dropped with a truncated-frame error; 0 = wait
                         forever (default 30000)
  --standby-of=PATH      run as a warm standby replicating the primary
                         at socket PATH (requires --state-dir); serves
                         reads, refuses writes until promoted via the
                         `promote` verb or SIGUSR1
  --repl-ack=MODE        none|batch|always replication acknowledgement:
                         always = the primary acks a mutation only after
                         a standby fsynced it (default none)
  --stats                print the stats table on shutdown
  --help                 show this help
)";

struct Options {
  std::string SocketPath;
  unsigned Jobs = 0;
  unsigned SessionJobs = 1;
  unsigned QueueLimit = 128;
  uint64_t MemoryBudgetMb = 256;
  unsigned MaxSessions = 64;
  DeadlinePolicy OnDeadline = DeadlinePolicy::Degrade;
  uint64_t StepBudget = 0;
  bool PrintStats = false;
  std::string StateDir;
  unsigned FlushIntervalMs = 200;
  uint64_t FlushCells = 8192;
  unsigned FlushMaxStalenessMs = 0;
  unsigned SnapshotIntervalMs = 5000;
  durable::FsyncPolicy Fsync = durable::FsyncPolicy::Batch;
  unsigned ReadTimeoutMs = 30000;
  std::string StandbyOf;
  repl::AckMode ReplAck = repl::AckMode::None;
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  auto Value = [](const std::string &Arg,
                  const std::string &Prefix) -> std::optional<std::string> {
    if (Arg.rfind(Prefix, 0) == 0)
      return Arg.substr(Prefix.size());
    return std::nullopt;
  };
  auto Invalid = [](const std::string &Flag, const std::string &Got,
                    const std::string &Expected) {
    std::fprintf(stderr, "ptran-serve: %s wants %s, got '%s'\n", Flag.c_str(),
                 Expected.c_str(), Got.c_str());
    return false;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(UsageText, stdout);
      std::exit(0);
    }
    if (Arg == "--stats") {
      Opts.PrintStats = true;
    } else if (auto V = Value(Arg, "--socket=")) {
      Opts.SocketPath = *V;
    } else if (auto V = Value(Arg, "--jobs=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--jobs", *V, "an unsigned integer");
      Opts.Jobs = *N;
    } else if (auto V = Value(Arg, "--session-jobs=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--session-jobs", *V, "an unsigned integer");
      Opts.SessionJobs = *N;
    } else if (auto V = Value(Arg, "--queue-limit=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--queue-limit", *V, "a positive integer");
      Opts.QueueLimit = *N;
    } else if (auto V = Value(Arg, "--memory-budget-mb=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--memory-budget-mb", *V, "a positive integer");
      Opts.MemoryBudgetMb = *N;
    } else if (auto V = Value(Arg, "--max-sessions=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--max-sessions", *V, "a positive integer");
      Opts.MaxSessions = *N;
    } else if (auto V = Value(Arg, "--on-deadline=")) {
      std::string P = toLower(*V);
      if (P == "degrade")
        Opts.OnDeadline = DeadlinePolicy::Degrade;
      else if (P == "fail")
        Opts.OnDeadline = DeadlinePolicy::Fail;
      else
        return Invalid("--on-deadline", *V, "degrade or fail");
    } else if (auto V = Value(Arg, "--step-budget=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--step-budget", *V, "an unsigned integer");
      Opts.StepBudget = *N;
    } else if (auto V = Value(Arg, "--state-dir=")) {
      Opts.StateDir = *V;
    } else if (auto V = Value(Arg, "--flush-interval-ms=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--flush-interval-ms", *V, "a positive integer");
      Opts.FlushIntervalMs = *N;
    } else if (auto V = Value(Arg, "--flush-cells=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--flush-cells", *V, "a positive integer");
      Opts.FlushCells = *N;
    } else if (auto V = Value(Arg, "--flush-max-staleness-ms=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--flush-max-staleness-ms", *V,
                       "an unsigned integer");
      Opts.FlushMaxStalenessMs = *N;
    } else if (auto V = Value(Arg, "--read-timeout-ms=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--read-timeout-ms", *V, "an unsigned integer");
      Opts.ReadTimeoutMs = *N;
    } else if (auto V = Value(Arg, "--standby-of=")) {
      Opts.StandbyOf = *V;
    } else if (auto V = Value(Arg, "--repl-ack=")) {
      std::optional<repl::AckMode> M = repl::parseAckMode(*V);
      if (!M)
        return Invalid("--repl-ack", *V, "none, batch or always");
      Opts.ReplAck = *M;
    } else if (auto V = Value(Arg, "--snapshot-interval-ms=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--snapshot-interval-ms", *V, "an unsigned integer");
      Opts.SnapshotIntervalMs = *N;
    } else if (auto V = Value(Arg, "--fsync=")) {
      std::string P = toLower(*V);
      if (P == "always")
        Opts.Fsync = durable::FsyncPolicy::Always;
      else if (P == "batch")
        Opts.Fsync = durable::FsyncPolicy::Batch;
      else if (P == "never")
        Opts.Fsync = durable::FsyncPolicy::Never;
      else
        return Invalid("--fsync", *V, "always, batch or never");
    } else {
      std::fprintf(stderr, "ptran-serve: unknown argument '%s'\n%s",
                   Arg.c_str(), UsageText);
      return false;
    }
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "ptran-serve: --socket=PATH is required\n%s",
                 UsageText);
    return false;
  }
  if (!Opts.StandbyOf.empty() && Opts.StateDir.empty()) {
    std::fprintf(stderr,
                 "ptran-serve: --standby-of needs --state-dir=DIR: a "
                 "standby persists the replicated journal so promotion "
                 "inherits a durable history\n");
    return false;
  }
  return true;
}

/// Signal handlers may only touch async-signal-safe state: a flag for the
/// loop and the listener fd, closed so a blocked accept() wakes up.
std::atomic<bool> ShuttingDown{false};
std::atomic<int> ListenFdForSignal{-1};
/// SIGUSR1 = promote this standby; a watcher thread does the real work.
std::atomic<bool> PromoteRequested{false};

void requestShutdown() {
  ShuttingDown.store(true);
  int Fd = ListenFdForSignal.exchange(-1);
  if (Fd >= 0) {
    // shutdown(2) — not just close(2) — is what wakes a thread already
    // blocked in accept() on this fd.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

void onSignal(int) { requestShutdown(); }

void onPromoteSignal(int) { PromoteRequested.store(true); }

/// Open connection fds, tracked so shutdown can unblock their readers
/// with shutdown(2) (never close(2) from another thread: the fd number
/// could be reused mid-read).
class ConnectionRegistry {
public:
  void add(int Fd) {
    std::lock_guard<std::mutex> L(M);
    Fds.insert(Fd);
  }
  void remove(int Fd) {
    std::lock_guard<std::mutex> L(M);
    Fds.erase(Fd);
  }
  void shutdownAll() {
    std::lock_guard<std::mutex> L(M);
    for (int Fd : Fds)
      ::shutdown(Fd, SHUT_RDWR);
  }

private:
  std::mutex M;
  std::set<int> Fds;
};

void serveConnection(int Fd, ServeCore &Core, ThreadPool &Pool,
                     ObsRegistry &Obs, const Options &Opts,
                     std::atomic<unsigned> &InFlight,
                     ConnectionRegistry &Conns,
                     repl::JournalShipper *Shipper) {
  // 0 = wait forever; otherwise a peer stalling mid-frame this long is
  // dropped rather than pinning the reader thread.
  int FrameTimeoutMs =
      Opts.ReadTimeoutMs == 0 ? -1 : static_cast<int>(Opts.ReadTimeoutMs);
  while (!ShuttingDown.load()) {
    WireMessage Request;
    std::string Error;
    int Rc = readFrame(Fd, Request, Error, FrameTimeoutMs);
    if (Rc <= 0) {
      if (Rc < 0 && Error.find("stalled") != std::string::npos) {
        Obs.addCounter("serve.stalled_peers");
        std::fprintf(stderr, "ptran-serve: dropping connection: %s\n",
                     Error.c_str());
      }
      break; // EOF, shutdown wakeup, stall, or a garbled frame.
    }

    WireMessage Resp;
    if (Request.Verb == "shutdown") {
      Resp = Core.handle(Request);
      writeFrame(Fd, Resp, Error);
      requestShutdown();
      break;
    }
    if (Request.Verb == "repl-subscribe") {
      if (!Shipper) {
        Resp = errorResponse("bad-request",
                             "this daemon has no durable state to replicate "
                             "(start it with --state-dir=DIR)");
        writeFrame(Fd, Resp, Error);
        break;
      }
      // The subscription owns this connection thread until the standby
      // disconnects; replication frames bypass the request pool.
      Shipper->runSubscription(Fd, Request);
      break;
    }
    // Admission control: shed instead of queueing past the limit. The
    // counter covers queued *and* executing requests, so a burst beyond
    // pool capacity turns into immediate `overloaded` errors the client
    // can back off on, not a silently growing queue.
    unsigned Current = InFlight.fetch_add(1);
    if (Current >= Opts.QueueLimit) {
      InFlight.fetch_sub(1);
      Obs.addCounter("serve.shed");
      Resp = errorResponse("overloaded",
                           "daemon at its in-flight request limit (" +
                               std::to_string(Opts.QueueLimit) +
                               "); back off and retry");
    } else {
      std::future<void> Done =
          Pool.submit([&] { Resp = Core.handle(Request); });
      Done.get();
      InFlight.fetch_sub(1);
    }
    if (!writeFrame(Fd, Resp, Error))
      break;
  }
  Conns.remove(Fd);
  ::close(Fd);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (!Opts.StandbyOf.empty())
    std::signal(SIGUSR1, onPromoteSignal);

  // Open the state store and replay its journal BEFORE the socket exists:
  // no client can observe a half-restored daemon.
  std::string Error;
  std::unique_ptr<durable::StateStore> Store;
  durable::StateStore::Recovery Recovered;
  if (!Opts.StateDir.empty()) {
    Store = durable::StateStore::open(Opts.StateDir, Opts.Fsync, Recovered,
                                      Error);
    if (!Store) {
      std::fprintf(stderr, "ptran-serve: cannot open --state-dir=%s: %s\n",
                   Opts.StateDir.c_str(), Error.c_str());
      return 1;
    }
    for (const std::string &D : Recovered.SnapshotDiagnostics)
      std::fprintf(stderr, "ptran-serve: recovery: %s\n", D.c_str());
    const durable::DeltaJournal::OpenReport &JR = Recovered.JournalReport;
    if (JR.TailQuarantined)
      std::fprintf(stderr,
                   "ptran-serve: recovery: journal tail quarantined at "
                   "offset %llu (%llu bytes moved to journal.ptwj"
                   ".quarantine): %s\n",
                   static_cast<unsigned long long>(JR.TailOffset),
                   static_cast<unsigned long long>(JR.QuarantinedBytes),
                   JR.TailReason.c_str());
  }

  ObsRegistry Obs;
  // Construction order is circular by nature: ServeOptions carries the
  // shipper (as ReplicationHooks) and the promote callback, but both the
  // shipper and the standby need the ServeCore. The shipper gets the core
  // via setCore() below; the promote lambda reads Standby through a
  // pointer that is filled in before the socket starts accepting.
  std::unique_ptr<repl::JournalShipper> Shipper;
  std::unique_ptr<repl::StandbyReplicator> Standby;
  if (Store) {
    repl::JournalShipper::Options ShipOpts;
    ShipOpts.Store = Store.get();
    ShipOpts.Ack = Opts.ReplAck;
    ShipOpts.Obs = &Obs;
    Shipper = std::make_unique<repl::JournalShipper>(ShipOpts);
  }
  ServeOptions SOpts;
  SOpts.Jobs = Opts.SessionJobs;
  SOpts.MemoryBudgetBytes = Opts.MemoryBudgetMb << 20;
  SOpts.MaxSessions = Opts.MaxSessions;
  SOpts.OnDeadline = Opts.OnDeadline;
  SOpts.DefaultStepBudget = Opts.StepBudget;
  SOpts.Obs = &Obs;
  SOpts.Store = Store.get();
  SOpts.FlushIntervalMs = Opts.FlushIntervalMs;
  SOpts.FlushCellThreshold = Opts.FlushCells;
  SOpts.FlushMaxStalenessMs = Opts.FlushMaxStalenessMs;
  SOpts.SnapshotIntervalMs = Opts.SnapshotIntervalMs;
  SOpts.Repl = Shipper.get();
  if (!Opts.StandbyOf.empty())
    SOpts.Promote = [&Standby](std::string &Err) {
      if (!Standby) {
        Err = "standby replicator not running";
        return false;
      }
      return Standby->promote(Err);
    };
  ServeCore Core(SOpts);
  if (Shipper)
    Shipper->setCore(&Core);

  if (Store) {
    ServeCore::RestoreReport RR;
    Core.restore(Recovered, RR);
    for (const std::string &D : RR.Diagnostics)
      std::fprintf(stderr, "ptran-serve: recovery: %s\n", D.c_str());
    std::fprintf(stderr,
                 "ptran-serve: recovered %u session(s) from %s (%llu "
                 "journal record(s) replayed, %llu covered by snapshots)\n",
                 RR.SessionsRestored, Opts.StateDir.c_str(),
                 static_cast<unsigned long long>(RR.RecordsReplayed),
                 static_cast<unsigned long long>(RR.RecordsSkipped));
    Core.startFlusher();
  }

  // Standby mode: start replicating before the socket opens, so the first
  // client already sees a read-only replica (never a half-role daemon).
  std::thread PromoteWatcher;
  if (!Opts.StandbyOf.empty()) {
    repl::StandbyReplicator::Options ROpts;
    ROpts.PrimarySocket = Opts.StandbyOf;
    ROpts.Core = &Core;
    ROpts.Store = Store.get();
    ROpts.Ack = Opts.ReplAck;
    ROpts.Obs = &Obs;
    Standby = std::make_unique<repl::StandbyReplicator>(ROpts);
    if (!Standby->start(Error)) {
      std::fprintf(stderr, "ptran-serve: cannot start standby: %s\n",
                   Error.c_str());
      return 1;
    }
    PromoteWatcher = std::thread([&Standby] {
      while (!ShuttingDown.load()) {
        if (PromoteRequested.exchange(false)) {
          std::string Err;
          if (Standby->promote(Err))
            std::fprintf(stderr,
                         "ptran-serve: promoted to primary (SIGUSR1)\n");
          else
            std::fprintf(stderr, "ptran-serve: promotion failed: %s\n",
                         Err.c_str());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  int ListenFd = listenUnix(Opts.SocketPath, Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "ptran-serve: %s\n", Error.c_str());
    return 1;
  }
  ListenFdForSignal.store(ListenFd);

  ThreadPool Pool(ThreadPool::resolveJobs(Opts.Jobs));
  std::atomic<unsigned> InFlight{0};
  ConnectionRegistry Conns;
  std::vector<std::jthread> Threads;

  std::fprintf(stderr,
               "ptran-serve: listening on %s (%u workers, queue limit %u%s)\n",
               Opts.SocketPath.c_str(), Pool.workerCount(), Opts.QueueLimit,
               Opts.StandbyOf.empty() ? "" : ", standby");

  while (!ShuttingDown.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // Listener closed by shutdown, or a fatal accept error.
    }
    Conns.add(Fd);
    Threads.emplace_back([Fd, &Core, &Pool, &Obs, &Opts, &InFlight, &Conns,
                          &Shipper] {
      serveConnection(Fd, Core, Pool, Obs, Opts, InFlight, Conns,
                      Shipper.get());
    });
  }

  requestShutdown();
  if (Shipper)
    Shipper->stop(); // Unblock subscription threads before joining them.
  if (Standby)
    Standby->stop();
  Conns.shutdownAll();
  for (std::jthread &T : Threads)
    T.join();
  if (PromoteWatcher.joinable())
    PromoteWatcher.join();
  // Graceful shutdown: in-flight requests are drained (threads joined),
  // so this checkpoint captures the final state — the next boot restores
  // from snapshots alone, with an empty journal.
  if (Store) {
    Core.stopFlusher();
    if (!Core.checkpoint(Error))
      std::fprintf(stderr, "ptran-serve: shutdown checkpoint failed: %s\n",
                   Error.c_str());
  }
  ::unlink(Opts.SocketPath.c_str());

  if (Opts.PrintStats)
    std::fputs(Obs.statsTable().c_str(), stdout);
  return 0;
}
