//===--- tools/ptran-bench-client.cpp - Daemon load generator -------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load generator for ptran-serve: opens many concurrent connections and
/// drives a mixed estimate / ingest-profile stream against a handful of
/// sessions, then prints throughput and a per-kind latency table
/// (p50/p95/p99/max). Setup loads the sessions, runs each once profiled
/// and captures its profile image; the ingest traffic re-ingests those
/// same bytes, which is exactly the accumulate-another-run's-worth shape
/// the paper's program database sees.
///
/// Exit status is 0 when every request got a well-formed response (shed
/// and deadline-degraded responses count as success — they are the load-
/// shedding behavior under test) and at least one estimate succeeded.
///
//===----------------------------------------------------------------------===//

#include "serve/Wire.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace ptran;
using namespace ptran::serve;

namespace {

const char *UsageText = R"(usage: ptran-bench-client --socket=PATH [options]

Drives concurrent mixed estimate/ingest traffic against a running
ptran-serve and prints throughput plus a latency percentile table.

options:
  --socket=PATH       daemon socket to connect to (required)
  --connections=N     concurrent client connections (default 100)
  --requests=N        requests per connection (default 20)
  --sessions=N        distinct sessions to spread load over (default 4)
  --ingest-every=N    every Nth request is an ingest-profile (default 4,
                      0 = estimates only)
  --stream-every=N    every Nth request is a stream-deltas append+flush
                      (default 0 = no streaming traffic)
  --stream-writers=N  dedicated writer threads that loop stream-deltas
                      appends (no flush) for the whole run, on top of the
                      request mix (default 0)
  --deadline-ms=MS    per-request deadline sent with every estimate
                      (default none)
  --setup-only        load + run + capture the sessions, then exit (used
                      to populate a daemon whose state-dir is under test)
  --probe=S[:FUNC]    skip the load phase; send one estimate for session S
                      (optionally function FUNC) and print the full-
                      precision answer. Repeatable; recovery tests diff
                      the output of two daemons byte-for-byte.
  --scrape-stats      fetch and print the daemon's stats table afterwards
  --shutdown          send a shutdown request when done
  --help              show this help
)";

struct Options {
  std::string SocketPath;
  unsigned Connections = 100;
  unsigned Requests = 20;
  unsigned Sessions = 4;
  unsigned IngestEvery = 4;
  unsigned StreamEvery = 0;
  unsigned StreamWriters = 0;
  double DeadlineMs = 0;
  bool SetupOnly = false;
  std::vector<std::string> Probes;
  bool ScrapeStats = false;
  bool Shutdown = false;
};

/// A small three-function program: enough call-graph and loop structure
/// that estimates exercise the interprocedural pass, small enough that one
/// request is milliseconds, not seconds.
const char *BenchSource = R"(      program main
      integer i, n
      real a(64)
      n = 32
      do 10 i = 1, n
        call work(i)
 10   continue
      call tail(n)
      end
      subroutine work(k)
      integer k, j
      real s
      s = 0
      do 20 j = 1, 8
        s = s + j * k
        if (s .gt. 100) then
          s = s - 100
        endif
 20   continue
      end
      subroutine tail(n)
      integer n, i
      real t
      t = 1
      do 30 i = 1, n
        t = t * 1.01
 30   continue
      print t
      end
)";

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  auto Value = [](const std::string &Arg,
                  const std::string &Prefix) -> std::optional<std::string> {
    if (Arg.rfind(Prefix, 0) == 0)
      return Arg.substr(Prefix.size());
    return std::nullopt;
  };
  auto Invalid = [](const std::string &Flag, const std::string &Got,
                    const std::string &Expected) {
    std::fprintf(stderr, "ptran-bench-client: %s wants %s, got '%s'\n",
                 Flag.c_str(), Expected.c_str(), Got.c_str());
    return false;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(UsageText, stdout);
      std::exit(0);
    }
    if (Arg == "--scrape-stats") {
      Opts.ScrapeStats = true;
    } else if (Arg == "--setup-only") {
      Opts.SetupOnly = true;
    } else if (auto V = Value(Arg, "--probe=")) {
      if (V->empty())
        return Invalid("--probe", *V, "SESSION or SESSION:FUNCTION");
      Opts.Probes.push_back(*V);
    } else if (Arg == "--shutdown") {
      Opts.Shutdown = true;
    } else if (auto V = Value(Arg, "--socket=")) {
      Opts.SocketPath = *V;
    } else if (auto V = Value(Arg, "--connections=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--connections", *V, "a positive integer");
      Opts.Connections = *N;
    } else if (auto V = Value(Arg, "--requests=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--requests", *V, "a positive integer");
      Opts.Requests = *N;
    } else if (auto V = Value(Arg, "--sessions=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0)
        return Invalid("--sessions", *V, "a positive integer");
      Opts.Sessions = *N;
    } else if (auto V = Value(Arg, "--ingest-every=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--ingest-every", *V, "an unsigned integer");
      Opts.IngestEvery = *N;
    } else if (auto V = Value(Arg, "--stream-every=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--stream-every", *V, "an unsigned integer");
      Opts.StreamEvery = *N;
    } else if (auto V = Value(Arg, "--stream-writers=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N)
        return Invalid("--stream-writers", *V, "an unsigned integer");
      Opts.StreamWriters = *N;
    } else if (auto V = Value(Arg, "--deadline-ms=")) {
      std::optional<double> D = parseDouble(*V);
      if (!D || *D < 0)
        return Invalid("--deadline-ms", *V, "a non-negative number");
      Opts.DeadlineMs = *D;
    } else {
      std::fprintf(stderr, "ptran-bench-client: unknown argument '%s'\n%s",
                   Arg.c_str(), UsageText);
      return false;
    }
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "ptran-bench-client: --socket=PATH is required\n%s",
                 UsageText);
    return false;
  }
  return true;
}

enum class Outcome { Ok, Degraded, Shed, Error };

/// Request kinds the latency table reports separately.
enum Kind : unsigned {
  KindEstimate = 0,
  KindIngest = 1,
  KindStream = 2,
  KindStreamWriter = 3,
};

struct Sample {
  uint64_t LatencyNs = 0;
  unsigned Kind = KindEstimate;
  Outcome What = Outcome::Error;
};

/// One request/response round trip, timed. Returns nullopt on transport
/// failure (connection gone).
std::optional<Sample> roundTrip(int Fd, const WireMessage &Request,
                                unsigned Kind) {
  Sample S;
  S.Kind = Kind;
  std::string Error;
  auto Start = std::chrono::steady_clock::now();
  WireMessage Resp;
  if (!writeFrame(Fd, Request, Error) || readFrame(Fd, Resp, Error) != 1)
    return std::nullopt;
  S.LatencyNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  if (Resp.Verb == "ok")
    S.What = Resp.param("degraded") == "1" ? Outcome::Degraded : Outcome::Ok;
  else if (Resp.param("code") == "overloaded")
    S.What = Outcome::Shed;
  else
    S.What = Outcome::Error;
  return S;
}

std::string sessionName(unsigned I) { return "bench-" + std::to_string(I); }

/// Builds a stream-deltas body from a describe response: one 16-byte
/// record (u32 function LE | u32 condition 0 LE | f64 delta 1.0 LE) per
/// function that has at least one condition. Deterministic, so reference
/// and recovered daemons fed the same stream traffic agree bit-for-bit.
std::string streamBodyFromDescribe(const WireMessage &Describe) {
  std::optional<unsigned> Funcs = parseUnsigned(Describe.param("functions"));
  std::string Body;
  if (!Funcs)
    return Body;
  for (unsigned I = 0; I < *Funcs; ++I) {
    std::optional<unsigned> Conds =
        parseUnsigned(Describe.param("conditions." + std::to_string(I)));
    if (!Conds || *Conds == 0)
      continue;
    uint8_t Rec[16] = {0};
    Rec[0] = static_cast<uint8_t>(I);
    Rec[1] = static_cast<uint8_t>(I >> 8);
    Rec[2] = static_cast<uint8_t>(I >> 16);
    Rec[3] = static_cast<uint8_t>(I >> 24);
    // Condition 0; delta = 1.0 (IEEE 754 LE: 0x3FF0000000000000).
    Rec[14] = 0xF0;
    Rec[15] = 0x3F;
    Body.append(reinterpret_cast<const char *>(Rec), sizeof(Rec));
  }
  return Body;
}

/// Loads the bench sessions, runs each once and captures its profile.
/// False (with a message) on any setup failure.
bool setUpSessions(const Options &Opts, std::string &ProfileBytes,
                   std::string &StreamBody) {
  std::string Error;
  int Fd = connectUnix(Opts.SocketPath, Error);
  if (Fd < 0) {
    std::fprintf(stderr, "ptran-bench-client: %s\n", Error.c_str());
    return false;
  }
  bool Ok = true;
  for (unsigned I = 0; Ok && I < Opts.Sessions; ++I) {
    WireMessage Load;
    Load.Verb = "load-program";
    Load.Params["session"] = sessionName(I);
    Load.Body = BenchSource;
    WireMessage Run;
    Run.Verb = "run";
    Run.Params["session"] = sessionName(I);
    WireMessage Capture;
    Capture.Verb = "capture-profile";
    Capture.Params["session"] = sessionName(I);
    for (const WireMessage &Req : {Load, Run, Capture}) {
      WireMessage Resp;
      if (!writeFrame(Fd, Req, Error) || readFrame(Fd, Resp, Error) != 1) {
        std::fprintf(stderr, "ptran-bench-client: setup %s failed: %s\n",
                     Req.Verb.c_str(), Error.c_str());
        Ok = false;
        break;
      }
      if (Resp.Verb != "ok") {
        std::fprintf(stderr, "ptran-bench-client: setup %s failed: %s\n",
                     Req.Verb.c_str(), Resp.param("message").c_str());
        Ok = false;
        break;
      }
      if (Req.Verb == "capture-profile")
        ProfileBytes = Resp.Body;
    }
  }
  // Every session runs the same program, so one describe (session 0)
  // yields the stream body all workers share.
  if (Ok && (Opts.StreamEvery > 0 || Opts.StreamWriters > 0)) {
    WireMessage Req, Resp;
    Req.Verb = "stream-deltas";
    Req.Params["session"] = sessionName(0);
    Req.Params["describe"] = "1";
    if (!writeFrame(Fd, Req, Error) || readFrame(Fd, Resp, Error) != 1 ||
        Resp.Verb != "ok") {
      std::fprintf(stderr, "ptran-bench-client: setup describe failed\n");
      Ok = false;
    } else {
      StreamBody = streamBodyFromDescribe(Resp);
    }
  }
  ::close(Fd);
  return Ok;
}

/// `--probe` mode: one estimate per probe spec against an already-running,
/// already-populated daemon, printed at full precision. Two daemons whose
/// durable state agrees print byte-identical output.
int runProbes(const Options &Opts) {
  std::string Error;
  int Fd = connectUnix(Opts.SocketPath, Error);
  if (Fd < 0) {
    std::fprintf(stderr, "ptran-bench-client: %s\n", Error.c_str());
    return 1;
  }
  int Exit = 0;
  for (const std::string &P : Opts.Probes) {
    std::string Session = P, Func;
    size_t Colon = P.find(':');
    if (Colon != std::string::npos) {
      Session = P.substr(0, Colon);
      Func = P.substr(Colon + 1);
    }
    WireMessage Req, Resp;
    Req.Verb = "estimate";
    Req.Params["session"] = Session;
    Req.Params["function"] = Func;
    if (!writeFrame(Fd, Req, Error) || readFrame(Fd, Resp, Error) != 1) {
      std::fprintf(stderr, "ptran-bench-client: probe transport failed: %s\n",
                   Error.c_str());
      ::close(Fd);
      return 1;
    }
    if (Resp.Verb != "ok") {
      std::printf("probe %s error code=%s message=%s\n", P.c_str(),
                  Resp.param("code").c_str(), Resp.param("message").c_str());
      Exit = 1;
      continue;
    }
    std::printf("probe %s function=%s time=%s var=%s stddev=%s degraded=%s "
                "quarantined=%s\n",
                P.c_str(), Resp.param("function").c_str(),
                Resp.param("time").c_str(), Resp.param("var").c_str(),
                Resp.param("stddev").c_str(), Resp.param("degraded").c_str(),
                Resp.param("quarantined").c_str());
  }
  if (Opts.Shutdown) {
    WireMessage Req, Resp;
    Req.Verb = "shutdown";
    if (!writeFrame(Fd, Req, Error) || readFrame(Fd, Resp, Error) != 1 ||
        Resp.Verb != "ok") {
      std::fprintf(stderr, "ptran-bench-client: shutdown failed\n");
      Exit = 1;
    }
  }
  ::close(Fd);
  return Exit;
}

void workerLoop(const Options &Opts, unsigned Worker,
                const std::string &ProfileBytes,
                const std::string &StreamBody, std::vector<Sample> &Out,
                std::atomic<bool> &TransportFailed) {
  std::string Error;
  int Fd = connectUnix(Opts.SocketPath, Error);
  if (Fd < 0) {
    TransportFailed.store(true);
    return;
  }
  for (unsigned I = 0; I < Opts.Requests; ++I) {
    std::string Session = sessionName((Worker + I) % Opts.Sessions);
    WireMessage Req;
    unsigned Kind = KindEstimate;
    if (Opts.StreamEvery > 0 && !StreamBody.empty() &&
        (I % Opts.StreamEvery) == Opts.StreamEvery - 1)
      Kind = KindStream;
    else if (Opts.IngestEvery > 0 &&
             (I % Opts.IngestEvery) == Opts.IngestEvery - 1)
      Kind = KindIngest;
    if (Kind == KindStream) {
      Req.Verb = "stream-deltas";
      Req.Params["session"] = Session;
      Req.Params["flush"] = "1";
      Req.Body = StreamBody;
    } else if (Kind == KindIngest) {
      Req.Verb = "ingest-profile";
      Req.Params["session"] = Session;
      Req.Body = ProfileBytes;
    } else {
      Req.Verb = "estimate";
      Req.Params["session"] = Session;
      if (Opts.DeadlineMs > 0)
        Req.Params["deadline-ms"] = formatDouble(Opts.DeadlineMs, 6);
    }
    std::optional<Sample> S = roundTrip(Fd, Req, Kind);
    if (!S) {
      TransportFailed.store(true);
      break;
    }
    Out.push_back(*S);
  }
  ::close(Fd);
}

/// A dedicated stream writer: loops un-flushed stream-deltas appends on
/// its own connection until the request workers finish. This is the
/// firehose shape the sharded delta ingest (and the replication shipper
/// behind it) is sized for: many tiny appends folded by the epoch
/// flusher, not by the client.
void streamWriterLoop(const Options &Opts, unsigned Writer,
                      const std::string &StreamBody,
                      std::atomic<bool> &MainDone, std::vector<Sample> &Out,
                      std::atomic<bool> &TransportFailed) {
  std::string Error;
  int Fd = connectUnix(Opts.SocketPath, Error);
  if (Fd < 0) {
    TransportFailed.store(true);
    return;
  }
  WireMessage Req;
  Req.Verb = "stream-deltas";
  Req.Params["session"] = sessionName(Writer % Opts.Sessions);
  Req.Body = StreamBody;
  while (!MainDone.load(std::memory_order_acquire)) {
    std::optional<Sample> S = roundTrip(Fd, Req, KindStreamWriter);
    if (!S) {
      // The daemon may shut down while we are mid-append; only a failure
      // before the main workers finished is a real transport error.
      if (!MainDone.load(std::memory_order_acquire))
        TransportFailed.store(true);
      break;
    }
    Out.push_back(*S);
  }
  ::close(Fd);
}

uint64_t percentile(std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

std::string msString(uint64_t Ns) {
  return formatDouble(static_cast<double>(Ns) / 1e6, 4);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  if (!Opts.Probes.empty())
    return runProbes(Opts);

  std::string ProfileBytes, StreamBody;
  if (!setUpSessions(Opts, ProfileBytes, StreamBody))
    return 1;
  if (Opts.SetupOnly)
    return 0;

  std::vector<std::vector<Sample>> PerWorker(Opts.Connections);
  std::vector<std::vector<Sample>> PerWriter(Opts.StreamWriters);
  std::atomic<bool> TransportFailed{false};
  std::atomic<bool> MainDone{false};
  auto Start = std::chrono::steady_clock::now();
  {
    // Writers outlive the request workers (they stop when MainDone flips),
    // so the destruction order matters: workers join first, then MainDone,
    // then the writer jthreads join on scope exit.
    std::vector<std::jthread> Writers;
    for (unsigned W = 0; W < Opts.StreamWriters; ++W)
      Writers.emplace_back([&, W] {
        streamWriterLoop(Opts, W, StreamBody, MainDone, PerWriter[W],
                         TransportFailed);
      });
    {
      std::vector<std::jthread> Workers;
      for (unsigned W = 0; W < Opts.Connections; ++W)
        Workers.emplace_back([&, W] {
          workerLoop(Opts, W, ProfileBytes, StreamBody, PerWorker[W],
                     TransportFailed);
        });
    }
    MainDone.store(true, std::memory_order_release);
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  // Aggregate per kind.
  struct Agg {
    std::vector<uint64_t> Latencies;
    uint64_t Count = 0, Ok = 0, Degraded = 0, Shed = 0, Errors = 0;
  };
  Agg ByKind[4]; // [0] estimate, [1] ingest, [2] stream, [3] writer.
  std::vector<std::vector<Sample>> AllSamples = PerWorker;
  AllSamples.insert(AllSamples.end(), PerWriter.begin(), PerWriter.end());
  for (const std::vector<Sample> &Samples : AllSamples)
    for (const Sample &S : Samples) {
      Agg &A = ByKind[S.Kind];
      ++A.Count;
      A.Latencies.push_back(S.LatencyNs);
      switch (S.What) {
      case Outcome::Ok:
        ++A.Ok;
        break;
      case Outcome::Degraded:
        ++A.Degraded;
        break;
      case Outcome::Shed:
        ++A.Shed;
        break;
      case Outcome::Error:
        ++A.Errors;
        break;
      }
    }

  uint64_t Total =
      ByKind[0].Count + ByKind[1].Count + ByKind[2].Count + ByKind[3].Count;
  std::printf("%llu requests over %u connections in %s s: %s req/s\n",
              static_cast<unsigned long long>(Total), Opts.Connections,
              formatDouble(Seconds, 4).c_str(),
              formatDouble(Seconds > 0 ? Total / Seconds : 0, 5).c_str());

  TablePrinter Table({"kind", "count", "ok", "degraded", "shed", "errors",
                      "p50 ms", "p95 ms", "p99 ms", "max ms"});
  const char *Names[4] = {"estimate", "ingest", "stream", "stream-writer"};
  for (int K = 0; K < 4; ++K) {
    Agg &A = ByKind[K];
    if (A.Count == 0)
      continue;
    std::sort(A.Latencies.begin(), A.Latencies.end());
    Table.addRow({Names[K], std::to_string(A.Count), std::to_string(A.Ok),
                  std::to_string(A.Degraded), std::to_string(A.Shed),
                  std::to_string(A.Errors),
                  msString(percentile(A.Latencies, 0.50)),
                  msString(percentile(A.Latencies, 0.95)),
                  msString(percentile(A.Latencies, 0.99)),
                  msString(A.Latencies.back())});
  }
  std::fputs(Table.str().c_str(), stdout);

  int Exit = 0;
  if (TransportFailed.load()) {
    std::fprintf(stderr, "ptran-bench-client: a connection failed mid-run\n");
    Exit = 1;
  }
  if (ByKind[0].Ok + ByKind[0].Degraded == 0) {
    std::fprintf(stderr, "ptran-bench-client: no estimate ever succeeded\n");
    Exit = 1;
  }
  uint64_t Errors = ByKind[0].Errors + ByKind[1].Errors + ByKind[2].Errors +
                    ByKind[3].Errors;
  if (Errors > 0) {
    std::fprintf(stderr, "ptran-bench-client: %llu request(s) errored\n",
                 static_cast<unsigned long long>(Errors));
    Exit = 1;
  }

  std::string Error;
  if (Opts.ScrapeStats || Opts.Shutdown) {
    int Fd = connectUnix(Opts.SocketPath, Error);
    if (Fd < 0) {
      std::fprintf(stderr, "ptran-bench-client: %s\n", Error.c_str());
      return 1;
    }
    if (Opts.ScrapeStats) {
      WireMessage Req, Resp;
      Req.Verb = "stats";
      if (writeFrame(Fd, Req, Error) && readFrame(Fd, Resp, Error) == 1 &&
          Resp.Verb == "ok")
        std::fputs(Resp.Body.c_str(), stdout);
      else {
        std::fprintf(stderr, "ptran-bench-client: stats scrape failed\n");
        Exit = 1;
      }
    }
    if (Opts.Shutdown) {
      WireMessage Req, Resp;
      Req.Verb = "shutdown";
      if (!writeFrame(Fd, Req, Error) || readFrame(Fd, Resp, Error) != 1 ||
          Resp.Verb != "ok") {
        std::fprintf(stderr, "ptran-bench-client: shutdown failed\n");
        Exit = 1;
      }
    }
    ::close(Fd);
  }
  return Exit;
}
